//! Structured observability for the WeSEER pipeline.
//!
//! This crate is a deliberately zero-dependency metrics core shared by
//! every other crate in the workspace. It provides:
//!
//! - **Counters and gauges** — lock-free atomics registered by name in a
//!   global [`Registry`].
//! - **Log-scale histograms** ([`hist::Histogram`]) — 64 power-of-two
//!   buckets with `count`/`sum`/`min`/`max`, good enough for p50/p90/p99
//!   latency estimates without allocation on the record path.
//! - **Hierarchical spans** ([`span::SpanGuard`]) — RAII timers that nest
//!   via a thread-local stack; a span opened inside another records under
//!   the dotted path `outer.inner`.
//! - **Events** ([`event::Event`]) — a bounded ring of structured log
//!   records (quiet by default; see [`event::emit`]).
//! - **Snapshots** ([`snapshot::MetricsSnapshot`]) — a point-in-time copy
//!   of every metric, with [`snapshot::MetricsSnapshot::delta_since`] for
//!   per-phase or per-app deltas, JSON-lines export, and a human-readable
//!   funnel/timing report ([`report`]).
//! - **Trace timelines** ([`timeline`]) — a bounded, drop-counting ring
//!   of timestamped records with per-thread lanes, fed by every span and
//!   by key pipeline events, exportable as Chrome trace-event JSON
//!   ([`chrome::to_chrome_trace`]). Enabled separately from the registry
//!   via [`timeline::set_enabled`].
//! - **Live endpoint** ([`http::ObsServer`]) — a std-only HTTP server
//!   exposing `/metrics` (Prometheus text, [`prom`]), `/funnel`,
//!   `/waitfor` (JSON + DOT, [`waitfor`]), and an embedded HTML
//!   dashboard at `/`.
//!
//! # Enabling
//!
//! The global registry starts **disabled**: every record path is a single
//! relaxed atomic load and an early return, so instrumented code costs
//! (well) under 2% when observability is off. Call [`set_enabled`]`(true)`
//! (the `reproduce` binary does this when `--metrics-out` is passed) to
//! start recording.
//!
//! # Example
//!
//! ```
//! weseer_obs::set_enabled(true);
//! {
//!     let _outer = weseer_obs::span("analyze");
//!     let _inner = weseer_obs::span("phase1");
//!     weseer_obs::add("analyzer.txn_pairs", 3);
//! }
//! let snap = weseer_obs::snapshot();
//! assert_eq!(snap.counter("analyzer.txn_pairs"), 3);
//! assert!(snap.histogram("span.analyze.phase1").is_some());
//! weseer_obs::set_enabled(false);
//! ```

pub mod chrome;
pub mod event;
pub mod hist;
pub mod http;
pub mod prom;
pub mod registry;
pub mod report;
pub mod snapshot;
pub mod span;
pub mod timeline;
pub mod waitfor;

pub use event::{Event, Level};
pub use hist::{Histogram, HistogramSnapshot};
pub use http::ObsServer;
pub use registry::Registry;
pub use snapshot::MetricsSnapshot;
pub use span::SpanGuard;
pub use timeline::{TimelineRecord, TimelineSnapshot};

use std::time::Duration;

/// Whether the global registry is currently recording.
pub fn enabled() -> bool {
    registry::global().enabled()
}

/// Turn global recording on or off.
pub fn set_enabled(on: bool) {
    registry::global().set_enabled(on);
}

/// Add `n` to the named counter (no-op while disabled).
pub fn add(name: &str, n: u64) {
    registry::global().add(name, n);
}

/// Add 1 to the named counter (no-op while disabled).
pub fn incr(name: &str) {
    registry::global().add(name, 1);
}

/// Set the named gauge to `v` (no-op while disabled).
pub fn gauge_set(name: &str, v: i64) {
    registry::global().gauge_set(name, v);
}

/// Record `value` into the named histogram (no-op while disabled).
pub fn observe(name: &str, value: u64) {
    registry::global().observe(name, value);
}

/// Record a duration (in microseconds) into the named histogram.
pub fn observe_duration(name: &str, d: Duration) {
    registry::global().observe_duration(name, d);
}

/// Open a hierarchical timing span; the returned guard records its
/// elapsed time under `span.<path>` when dropped. Inert while disabled.
pub fn span(name: &str) -> SpanGuard {
    SpanGuard::enter(name)
}

/// Record a structured event in the global ring buffer.
pub fn emit(level: Level, target: &str, message: String) {
    event::emit(level, target, message);
}

/// Snapshot every metric in the global registry.
pub fn snapshot() -> MetricsSnapshot {
    registry::global().snapshot()
}

/// Clear all metrics and events in the global registry (tests and
/// per-run isolation; the enabled flag is left unchanged).
pub fn reset() {
    registry::global().reset();
}

/// Serializes tests that toggle the global registry/timeline enabled
/// flags or global state (spans, timeline, waitfor, http) — they share
/// one process-wide registry, so they must not interleave.
#[cfg(test)]
pub(crate) fn global_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

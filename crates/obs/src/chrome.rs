//! Chrome trace-event export for timeline snapshots.
//!
//! [`to_chrome_trace`] serializes a [`TimelineSnapshot`] into the JSON
//! object format consumed by `chrome://tracing` and Perfetto: one `"M"`
//! (metadata) event per lane naming its thread row, one `"X"` (complete)
//! event per duration record, and one `"i"` (instant) event per
//! zero-duration record. Lane indexes become `tid`s, so every worker
//! thread of the scoped-thread scheduler renders as its own row and
//! stragglers are visible at a glance.
//!
//! The writer is hand-rolled on [`crate::snapshot::write_json_string`] —
//! this crate stays zero-dependency.

use crate::snapshot::write_json_string;
use crate::timeline::TimelineSnapshot;
use std::fmt::Write as _;

/// Serialize `snap` as a Chrome trace-event JSON object
/// (`{"traceEvents":[...],...}`).
pub fn to_chrome_trace(snap: &TimelineSnapshot) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
        out.push_str("\n ");
    };

    for (tid, lane) in snap.lanes.iter().enumerate() {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":"
        );
        write_json_string(&mut out, lane);
        out.push_str("}}");
    }

    for rec in &snap.records {
        sep(&mut out);
        match rec.dur_us {
            Some(dur) => {
                let _ = write!(
                    out,
                    "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{dur},\"name\":",
                    rec.lane, rec.ts_us
                );
            }
            None => {
                let _ = write!(
                    out,
                    "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"ts\":{},\"name\":",
                    rec.lane, rec.ts_us
                );
            }
        }
        write_json_string(&mut out, &rec.name);
        out.push_str(",\"cat\":");
        write_json_string(&mut out, rec.cat);
        if !rec.args.is_empty() {
            out.push_str(",\"args\":{");
            for (i, (k, v)) in rec.args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(&mut out, k);
                out.push(':');
                write_json_string(&mut out, v);
            }
            out.push('}');
        }
        out.push('}');
    }

    let _ = write!(
        out,
        "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"dropped\":\"{}\"}}}}",
        snap.dropped
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::TimelineRecord;

    fn sample() -> TimelineSnapshot {
        TimelineSnapshot {
            records: vec![
                TimelineRecord {
                    name: "analyzer.diagnose".into(),
                    cat: "span",
                    ts_us: 10,
                    dur_us: Some(250),
                    lane: 0,
                    args: Vec::new(),
                },
                TimelineRecord {
                    name: "smt.solve".into(),
                    cat: "smt",
                    ts_us: 42,
                    dur_us: None,
                    lane: 1,
                    args: vec![
                        ("tier".into(), "t1".into()),
                        ("verdict".into(), "unsat".into()),
                    ],
                },
            ],
            lanes: vec!["main".into(), "analyzer.worker0".into()],
            dropped: 3,
        }
    }

    #[test]
    fn emits_metadata_complete_and_instant_events() {
        let json = to_chrome_trace(&sample());
        assert!(json.starts_with("{\"traceEvents\":["));
        // Thread-name metadata for both lanes.
        assert!(json.contains("\"ph\":\"M\",\"pid\":1,\"tid\":0"));
        assert!(json.contains("{\"name\":\"analyzer.worker0\"}"));
        // The span is a complete event with ts + dur on lane 0.
        assert!(json.contains(
            "\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":10,\"dur\":250,\"name\":\"analyzer.diagnose\""
        ));
        // The solve is an instant with args on lane 1.
        assert!(json.contains("\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":1,\"ts\":42"));
        assert!(json.contains("\"args\":{\"tier\":\"t1\",\"verdict\":\"unsat\"}"));
        assert!(json.ends_with("\"otherData\":{\"dropped\":\"3\"}}"));
    }

    #[test]
    fn empty_snapshot_is_still_valid() {
        let json = to_chrome_trace(&TimelineSnapshot::default());
        assert_eq!(
            json,
            "{\"traceEvents\":[\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":\"0\"}}"
        );
    }

    #[test]
    fn names_are_escaped() {
        let mut snap = sample();
        snap.records[0].name = "weird\"name\n".into();
        let json = to_chrome_trace(&snap);
        assert!(json.contains("\"weird\\\"name\\n\""));
    }
}

//! Micro-benchmarks of the raw SAT core underneath the lazy-SMT loop:
//! the CDCL engine (first-UIP learning, VSIDS, restarts) against the
//! legacy chronological DPLL it replaced, and the incremental
//! assumption-based entry point against fresh per-query solves.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use weseer_smt::sat::{self, Cnf, Lit, SatResult, Solver};

/// PHP(h+1, h): h+1 pigeons into h holes — UNSAT, and the canonical
/// separator between clause-learning and chronological search.
fn pigeonhole(holes: usize) -> Cnf {
    let pigeons = holes + 1;
    let mut cnf = Cnf::default();
    let var = |p: usize, h: usize| p * holes + h;
    for _ in 0..pigeons * holes {
        cnf.new_var();
    }
    for p in 0..pigeons {
        let clause: Vec<Lit> = (0..holes).map(|h| Lit::pos(var(p, h))).collect();
        cnf.add_clause(clause);
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                cnf.add_clause([Lit::neg(var(p1, h)), Lit::neg(var(p2, h))]);
            }
        }
    }
    cnf
}

/// A long implication ladder with a satisfiable tail: mostly unit
/// propagation, the shape Tseitin lowering produces for deep terms.
fn implication_ladder(n: usize) -> Cnf {
    let mut cnf = Cnf::default();
    for _ in 0..n {
        cnf.new_var();
    }
    for i in 0..n - 1 {
        cnf.add_clause([Lit::neg(i), Lit::pos(i + 1)]);
    }
    cnf.add_unit(Lit::pos(0));
    cnf
}

/// One persistent solver answering `n` assumption queries over a shared
/// ladder — the fine-grained phase's per-pair access pattern.
fn assumption_queries(solver: &mut Solver, n: usize) {
    for i in 0..n {
        let (res, _) = solver.solve_under_assumptions(&[Lit::pos(i)], u64::MAX);
        assert!(matches!(res, Some(SatResult::Sat(_))));
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("sat_core");
    for holes in [4usize, 5] {
        let cnf = pigeonhole(holes);
        g.bench_function(format!("pigeonhole_{holes}_cdcl"), |b| {
            b.iter(|| {
                let (res, _) = sat::solve_instrumented(&cnf, u64::MAX);
                assert!(matches!(res, Some(SatResult::Unsat)));
            })
        });
        g.bench_function(format!("pigeonhole_{holes}_dpll"), |b| {
            b.iter(|| {
                let (res, _) = sat::solve_dpll_instrumented(&cnf, u64::MAX);
                assert!(matches!(res, Some(SatResult::Unsat)));
            })
        });
    }
    let ladder = implication_ladder(512);
    g.bench_function("ladder_512_incremental_16_queries", |b| {
        b.iter_batched(
            || Solver::from_cnf(&ladder),
            |mut solver| assumption_queries(&mut solver, 16),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("ladder_512_fresh_16_queries", |b| {
        b.iter(|| {
            for i in 0..16 {
                let mut solver = Solver::from_cnf(&ladder);
                let (res, _) = solver.solve_under_assumptions(&[Lit::pos(i)], u64::MAX);
                assert!(matches!(res, Some(SatResult::Sat(_))));
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Table III as a Criterion bench: unit-test execution cost per engine
//! mode, plus the naive-library ablation (the Sec. IV pruning cost).

use criterion::{criterion_group, criterion_main, Criterion};
use weseer_apps::app::collect_trace;
use weseer_apps::{AppLocks, Broadleaf, ECommerceApp, Fixes};
use weseer_concolic::{ExecMode, LibraryMode};
use weseer_db::Database;

fn run_suite(mode: ExecMode, lib: LibraryMode) {
    let app = Broadleaf;
    let db = Database::new(app.catalog());
    app.seed(&db);
    let fixes = Fixes::none();
    let locks = AppLocks::new();
    for test in app.unit_tests() {
        let (_t, _c, r) = collect_trace(&app, test, &db, &fixes, &locks, mode, lib);
        r.unwrap();
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_collection");
    g.sample_size(10);
    g.bench_function("suite_native", |b| {
        b.iter(|| run_suite(ExecMode::Native, LibraryMode::Modeled))
    });
    g.bench_function("suite_interpretive", |b| {
        b.iter(|| run_suite(ExecMode::Interpretive, LibraryMode::Modeled))
    });
    g.bench_function("suite_concolic", |b| {
        b.iter(|| run_suite(ExecMode::Concolic, LibraryMode::Modeled))
    });
    g.bench_function("suite_concolic_naive_libs", |b| {
        b.iter(|| run_suite(ExecMode::Concolic, LibraryMode::Naive))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Micro-benchmarks of the SMT stand-in: the fine-grained phase calls it
//! once per candidate cycle, so per-query latency bounds diagnosis time.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use weseer_smt::{check, Ctx, Rat, SolveResult, SolverConfig, Sort};

/// x₀ < x₁ < … < xₙ ∧ x₀ = 0 ∧ xₙ ≤ n — SAT, forces a full integer model.
fn chained_sat(n: usize) -> (Ctx, weseer_smt::TermId) {
    let mut ctx = Ctx::new();
    let xs: Vec<_> = (0..=n)
        .map(|i| ctx.var(format!("x{i}"), Sort::Int))
        .collect();
    let mut parts = Vec::new();
    for w in xs.windows(2) {
        parts.push(ctx.lt(w[0], w[1]));
    }
    let zero = ctx.int(0);
    let nn = ctx.int(n as i64);
    parts.push(ctx.eq(xs[0], zero));
    parts.push(ctx.le(xs[n], nn));
    let f = ctx.and(parts);
    (ctx, f)
}

/// The same chain with the bound off by one — UNSAT.
fn chained_unsat(n: usize) -> (Ctx, weseer_smt::TermId) {
    let mut ctx = Ctx::new();
    let xs: Vec<_> = (0..=n)
        .map(|i| ctx.var(format!("x{i}"), Sort::Int))
        .collect();
    let mut parts = Vec::new();
    for w in xs.windows(2) {
        parts.push(ctx.lt(w[0], w[1]));
    }
    let zero = ctx.int(0);
    let nm1 = ctx.int(n as i64 - 1);
    parts.push(ctx.eq(xs[0], zero));
    parts.push(ctx.le(xs[n], nm1));
    let f = ctx.and(parts);
    (ctx, f)
}

/// A conflict-condition-shaped formula: two row variables, equalities to
/// result symbols, disjunction of range arms — the Fig. 9 pattern.
fn conflict_shaped() -> (Ctx, weseer_smt::TermId) {
    let mut ctx = Ctx::new();
    let r1 = ctx.var("r1.p.ID", Sort::Int);
    let r2 = ctx.var("r2.p.ID", Sort::Int);
    let a_pid = ctx.var("A1.res.p.ID", Sort::Int);
    let b_pid = ctx.var("A2.res.p.ID", Sort::Int);
    let qty = ctx.var("A1.res.p.QTY", Sort::Real);
    let need = ctx.var("A1.oi.QTY", Sort::Real);
    let e1 = ctx.eq(r1, a_pid);
    let e2 = ctx.eq(r1, b_pid);
    let e3 = ctx.eq(r2, b_pid);
    let e4 = ctx.eq(r2, a_pid);
    let ge = ctx.ge(qty, need);
    let one = ctx.real(Rat::int(1));
    let pos = ctx.ge(need, one);
    let varl = ctx.var("varl", Sort::Int);
    let range1 = ctx.ge(r1, varl);
    let range2 = ctx.ge(a_pid, varl);
    let base = ctx.and([e1, e2, e3, e4, ge, pos]);
    let arm = ctx.and([range1, range2]);
    let f = ctx.or([base, arm]);
    (ctx, f)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("smt");
    g.sample_size(20);
    for n in [8usize, 24] {
        g.bench_function(format!("chained_sat_{n}"), |b| {
            b.iter_batched(
                || chained_sat(n),
                |(mut ctx, f)| {
                    assert!(matches!(
                        check(&mut ctx, f, &SolverConfig::default()),
                        SolveResult::Sat(_)
                    ));
                },
                BatchSize::SmallInput,
            )
        });
        g.bench_function(format!("chained_unsat_{n}"), |b| {
            b.iter_batched(
                || chained_unsat(n),
                |(mut ctx, f)| {
                    assert!(matches!(
                        check(&mut ctx, f, &SolverConfig::default()),
                        SolveResult::Unsat
                    ));
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.bench_function("conflict_shaped", |b| {
        b.iter_batched(
            conflict_shaped,
            |(mut ctx, f)| {
                assert!(matches!(
                    check(&mut ctx, f, &SolverConfig::default()),
                    SolveResult::Sat(_)
                ));
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Storage-engine micro-benchmarks: per-statement latency of the locking
//! executor (the substrate under both trace collection and Figs. 10/11).

use criterion::{criterion_group, criterion_main, Criterion};
use weseer_db::Database;
use weseer_sqlir::{parser::parse, Catalog, ColType, TableBuilder, Value};

fn catalog() -> Catalog {
    Catalog::new(vec![
        TableBuilder::new("Product")
            .col("ID", ColType::Int)
            .col("QTY", ColType::Int)
            .primary_key(&["ID"])
            .build()
            .unwrap(),
        TableBuilder::new("OrderItem")
            .col("ID", ColType::Int)
            .col("O_ID", ColType::Int)
            .col("P_ID", ColType::Int)
            .primary_key(&["ID"])
            .foreign_key("O_ID", "Product", "ID")
            .foreign_key("P_ID", "Product", "ID")
            .build()
            .unwrap(),
    ])
    .unwrap()
}

fn seeded(rows: i64) -> Database {
    let db = Database::new(catalog());
    db.seed(
        "Product",
        (1..=rows)
            .map(|i| vec![Value::Int(i), Value::Int(100)])
            .collect(),
    );
    db.seed(
        "OrderItem",
        (1..=rows)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Int(i % 50 + 1),
                    Value::Int(i % rows + 1),
                ]
            })
            .collect(),
    );
    db
}

fn bench(c: &mut Criterion) {
    let db = seeded(1000);
    let mut g = c.benchmark_group("db");

    let sel = parse("SELECT * FROM Product p WHERE p.ID = ?").unwrap();
    g.bench_function("point_select_txn", |b| {
        let mut i = 0i64;
        b.iter(|| {
            i = i % 1000 + 1;
            let mut s = db.session();
            s.begin();
            let r = s.execute(&sel, &[Value::Int(i)]).unwrap();
            assert_eq!(r.rows.len(), 1);
            s.commit().unwrap();
        })
    });

    let upd = parse("UPDATE Product SET QTY = ? WHERE ID = ?").unwrap();
    g.bench_function("point_update_txn", |b| {
        let mut i = 0i64;
        b.iter(|| {
            i = i % 1000 + 1;
            let mut s = db.session();
            s.begin();
            s.execute(&upd, &[Value::Int(7), Value::Int(i)]).unwrap();
            s.commit().unwrap();
        })
    });

    let scan = parse("SELECT * FROM OrderItem oi WHERE oi.O_ID = ?").unwrap();
    g.bench_function("secondary_eq_scan_txn", |b| {
        let mut i = 0i64;
        b.iter(|| {
            i = i % 50 + 1;
            let mut s = db.session();
            s.begin();
            let r = s.execute(&scan, &[Value::Int(i)]).unwrap();
            assert!(!r.rows.is_empty());
            s.commit().unwrap();
        })
    });

    let join =
        parse("SELECT * FROM OrderItem oi JOIN Product p ON p.ID = oi.P_ID WHERE oi.O_ID = ?")
            .unwrap();
    g.bench_function("join_txn", |b| {
        let mut i = 0i64;
        b.iter(|| {
            i = i % 50 + 1;
            let mut s = db.session();
            s.begin();
            let r = s.execute(&join, &[Value::Int(i)]).unwrap();
            assert!(!r.rows.is_empty());
            s.commit().unwrap();
        })
    });

    let ins = parse("INSERT INTO OrderItem (ID, O_ID, P_ID) VALUES (?, ?, ?)").unwrap();
    // Criterion re-enters the closure per sampling phase; the id source
    // must survive across phases or inserts collide.
    db.bump_id("OrderItem", 1_000_000);
    g.bench_function("insert_txn", |b| {
        b.iter(|| {
            let next = db.next_id("OrderItem");
            let mut s = db.session();
            s.begin();
            s.execute(&ins, &[Value::Int(next), Value::Int(1), Value::Int(1)])
                .unwrap();
            s.commit().unwrap();
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

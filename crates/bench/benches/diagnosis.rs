//! Diagnosis-pipeline benchmarks, including the DESIGN.md ablations:
//! the three-phase funnel vs. the brute-force encoding (Sec. V-B), and
//! fine-grained vs. coarse-only analysis.

use criterion::{criterion_group, criterion_main, Criterion};
use weseer_analyzer::{coarse_cycle_count, diagnose, AnalyzerConfig, CollectedTrace};
use weseer_apps::{ECommerceApp, Shopizer};
use weseer_core::Weseer;

fn traces() -> Vec<CollectedTrace> {
    let weseer = Weseer::new();
    let (traces, _db) = weseer.collect_traces(&Shopizer, &weseer_apps::Fixes::none());
    traces
}

fn bench(c: &mut Criterion) {
    let catalog = Shopizer.catalog();
    let mut g = c.benchmark_group("diagnosis");
    g.sample_size(10);

    g.bench_function("collect_shopizer_traces", |b| b.iter(traces));

    let ts = traces();
    g.bench_function("three_phase_full", |b| {
        b.iter(|| {
            let d = diagnose(&catalog, &ts, &AnalyzerConfig::default());
            assert!(!d.deadlocks.is_empty());
        })
    });

    g.bench_function("ablation_no_filter_phases", |b| {
        let config = AnalyzerConfig {
            skip_filter_phases: true,
            ..AnalyzerConfig::default()
        };
        b.iter(|| {
            let d = diagnose(&catalog, &ts, &config);
            assert!(!d.deadlocks.is_empty());
        })
    });

    g.bench_function("ablation_no_range_locks", |b| {
        let config = AnalyzerConfig {
            use_range_locks: false,
            ..AnalyzerConfig::default()
        };
        b.iter(|| {
            let _ = diagnose(&catalog, &ts, &config);
        })
    });

    g.bench_function("coarse_baseline_only", |b| {
        b.iter(|| {
            let n = coarse_cycle_count(&ts);
            assert!(n > 0);
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

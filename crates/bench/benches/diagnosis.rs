//! Diagnosis-pipeline benchmarks, including the DESIGN.md ablations:
//! the three-phase funnel vs. the brute-force encoding (Sec. V-B), and
//! fine-grained vs. coarse-only analysis.

use criterion::{criterion_group, criterion_main, Criterion};
use weseer_analyzer::{coarse_cycle_count, diagnose, AnalyzerConfig, CollectedTrace};
use weseer_apps::{Broadleaf, ECommerceApp, Shopizer};
use weseer_core::Weseer;

fn traces() -> Vec<CollectedTrace> {
    let weseer = Weseer::new();
    let (traces, _db) = weseer.collect_traces(&Shopizer, &weseer_apps::Fixes::none());
    traces
}

fn broadleaf_traces() -> Vec<CollectedTrace> {
    let weseer = Weseer::new();
    let (traces, _db) = weseer.collect_traces(&Broadleaf, &weseer_apps::Fixes::none());
    traces
}

fn bench(c: &mut Criterion) {
    let catalog = Shopizer.catalog();
    let mut g = c.benchmark_group("diagnosis");
    g.sample_size(10);

    g.bench_function("collect_shopizer_traces", |b| b.iter(traces));

    let ts = traces();
    g.bench_function("three_phase_full", |b| {
        b.iter(|| {
            let d = diagnose(&catalog, &ts, &AnalyzerConfig::default());
            assert!(!d.deadlocks.is_empty());
        })
    });

    g.bench_function("ablation_no_filter_phases", |b| {
        let config = AnalyzerConfig {
            skip_filter_phases: true,
            ..AnalyzerConfig::default()
        };
        b.iter(|| {
            let d = diagnose(&catalog, &ts, &config);
            assert!(!d.deadlocks.is_empty());
        })
    });

    g.bench_function("ablation_no_range_locks", |b| {
        let config = AnalyzerConfig {
            use_range_locks: false,
            ..AnalyzerConfig::default()
        };
        b.iter(|| {
            let _ = diagnose(&catalog, &ts, &config);
        })
    });

    g.bench_function("coarse_baseline_only", |b| {
        b.iter(|| {
            let n = coarse_cycle_count(&ts);
            assert!(n > 0);
        })
    });

    // Scheduler sweep on the Broadleaf-scale workload (the larger trace
    // set): same diagnosis, varying worker counts. Output is identical
    // for every point — only the wall clock moves.
    let bl_catalog = Broadleaf.catalog();
    let bl = broadleaf_traces();
    for threads in [1, 2, 4, 8] {
        let config = AnalyzerConfig {
            threads,
            ..AnalyzerConfig::default()
        };
        g.bench_function(format!("broadleaf_threads{threads}"), |b| {
            b.iter(|| {
                let d = diagnose(&bl_catalog, &bl, &config);
                assert!(!d.deadlocks.is_empty());
            })
        });
    }

    // The verdict cache's contribution, isolated at one thread, on both
    // workloads: Broadleaf's candidates differ in concrete constants (all
    // misses — the bench bounds the canonicalization overhead), while
    // Shopizer's repeated Add templates re-discharge alpha-equivalent
    // formulas (real hits — the bench measures the saved solves).
    for (name, cat, ts) in [("broadleaf", &bl_catalog, &bl), ("shopizer", &catalog, &ts)] {
        for smt_cache in [true, false] {
            let config = AnalyzerConfig {
                threads: 1,
                smt_cache,
                ..AnalyzerConfig::default()
            };
            let suffix = if smt_cache { "cache" } else { "nocache" };
            g.bench_function(format!("{name}_threads1_{suffix}"), |b| {
                b.iter(|| {
                    let d = diagnose(cat, ts, &config);
                    assert!(!d.deadlocks.is_empty());
                })
            });
        }
    }

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Plain-text table rendering for the reproduction harness.

/// Render an ASCII table: header row + data rows, columns padded.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            line.push_str(&format!(" {:<width$} |", c, width = widths[i]));
        }
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    let mut sep = String::from("|");
    for w in &widths {
        sep.push_str(&format!("{:-<width$}|", "", width = w + 2));
    }
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// A crude horizontal bar for figure-style output.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    let n = if max <= 0.0 {
        0
    } else {
        ((value / max) * width as f64).round() as usize
    };
    "#".repeat(n.min(width))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = table(
            &["API", "ms"],
            &[
                vec!["Register".into(), "9".into()],
                vec!["Add1".into(), "822".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(lines[0].contains("API"));
        assert!(lines[3].contains("822"));
    }

    #[test]
    fn bars_scale() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(10.0, 10.0, 10), "##########");
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }
}

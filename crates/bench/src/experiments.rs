//! The per-experiment reproduction drivers: one function per table/figure
//! of the paper, each returning rendered text (consumed by the
//! `reproduce` binary and by EXPERIMENTS.md).

use crate::render::{bar, table};
use std::fmt::Write as _;
use std::time::Duration;
use weseer_apps::{Broadleaf, ECommerceApp, Fix, KnownDeadlock, Shopizer};
use weseer_core::{
    measure_overhead, measure_pruning, run_perf_sweep, PerfConfig, Weseer, FUNNEL_STAGES,
};
use weseer_db::IsolationLevel;

/// Table I: the target APIs with inputs and invocation counts.
pub fn table1() -> String {
    let rows = vec![
        vec![
            "Register".into(),
            "Register one user".into(),
            "username, email, password, password for confirmation".into(),
            "1".into(),
            "1".into(),
        ],
        vec![
            "Add".into(),
            "Add one product to cart".into(),
            "userId, productId".into(),
            "3".into(),
            "3".into(),
        ],
        vec![
            "Ship".into(),
            "Edit user's shipment information".into(),
            "userId, shipment address, ...".into(),
            "1".into(),
            "1".into(),
        ],
        vec![
            "Payment".into(),
            "Edit user's payment information".into(),
            "userId, payment method, amount".into(),
            "1".into(),
            "-".into(),
        ],
        vec![
            "Checkout".into(),
            "Checkout the order".into(),
            "userId".into(),
            "1".into(),
            "1".into(),
        ],
    ];
    let mut out = String::from("Table I: target APIs\n");
    out.push_str(&table(
        &["API", "Description", "Input", "Broadleaf", "Shopizer"],
        &rows,
    ));
    // Verify the simulated apps actually expose these unit tests.
    let bl: Vec<&str> = Broadleaf.unit_tests().to_vec();
    let sz: Vec<&str> = Shopizer.unit_tests().to_vec();
    let _ = writeln!(out, "\nBroadleaf unit tests: {bl:?}");
    let _ = writeln!(out, "Shopizer unit tests:  {sz:?}");
    out
}

/// Table II: run WeSEER on both apps and print the found deadlock rows.
pub fn table2() -> String {
    let weseer = Weseer::new();
    let mut out = String::from("Table II: deadlocks found by WeSEER\n");
    let mut rows = Vec::new();
    let mut found_ids = 0usize;
    for analysis in [weseer.analyze(&Broadleaf), weseer.analyze(&Shopizer)] {
        for row in KnownDeadlock::TABLE2 {
            if row.app() != analysis.app {
                continue;
            }
            let count = analysis.groups.get(&row).copied().unwrap_or(0);
            let status = if count > 0 { "FOUND" } else { "missing" };
            if count > 0 {
                found_ids += row.id_count();
            }
            rows.push(vec![
                analysis.app.clone(),
                row.ids().to_string(),
                row.description().to_string(),
                row.fix().map(|f| f.label()).unwrap_or_default(),
                row.fix()
                    .map(|f| f.description().to_string())
                    .unwrap_or_default(),
                format!("{status} ({count} cycles)"),
            ]);
        }
        let fp = analysis
            .groups
            .get(&KnownDeadlock::FpAppLocked)
            .copied()
            .unwrap_or(0);
        rows.push(vec![
            analysis.app.clone(),
            "(fp)".into(),
            "app-level-locked logic (known false positives)".into(),
            "-".into(),
            "-".into(),
            format!("{fp} cycles"),
        ]);
    }
    out.push_str(&table(
        &[
            "App",
            "Id",
            "Deadlock-prone txn",
            "Fix",
            "Fixing approach",
            "WeSEER",
        ],
        &rows,
    ));
    let _ = writeln!(
        out,
        "\npaper: 18 deadlocks (d1–d18); reproduced: {found_ids}/18 covered by found rows"
    );
    out
}

/// Sec. VII-B baseline: coarse-grained STEPDAD/REDACT cycle counts vs
/// WeSEER's confirmed deadlocks.
pub fn baseline() -> String {
    let weseer = Weseer::new();
    let mut out = String::from("Coarse-grained baseline (STEPDAD/REDACT) vs WeSEER fine-grained\n");
    let mut rows = Vec::new();
    for analysis in [weseer.analyze(&Broadleaf), weseer.analyze(&Shopizer)] {
        rows.push(vec![
            analysis.app.clone(),
            analysis.coarse_cycles.to_string(),
            analysis.diagnosis.deadlocks.len().to_string(),
            analysis.rows_found().len().to_string(),
        ]);
    }
    out.push_str(&table(
        &[
            "App",
            "coarse hold-and-wait cycles",
            "SMT-confirmed cycles",
            "Table II rows",
        ],
        &rows,
    ));
    out.push_str(
        "\npaper: the coarse approach emits 18,384 cycles on the authors' traces — \
         impractical to triage; the fine-grained phases cut this to the real deadlocks.\n",
    );
    out
}

/// Table III: unit-test execution time per engine mode.
pub fn table3(repetitions: usize) -> String {
    let rows_data = measure_overhead(&Broadleaf, repetitions);
    let mut out = String::from(
        "Table III: time (microseconds) executing Broadleaf unit tests per engine mode\n",
    );
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                r.api.clone(),
                r.original.as_micros().to_string(),
                r.interpretive.as_micros().to_string(),
                r.concolic.as_micros().to_string(),
                format!("{:.1}x", r.interpretive_factor()),
                format!("{:.1}x", r.concolic_factor()),
            ]
        })
        .collect();
    out.push_str(&table(
        &[
            "API",
            "Original",
            "Interpretive",
            "Interp+Concolic",
            "interp/orig",
            "conc/orig",
        ],
        &rows,
    ));
    out.push_str(
        "\npaper (ms, JVM-scale): Original 9–822, Interpretive ~5–10x, Concolic ~4–6x on top;\n\
         shape check: Concolic > Interpretive > Original for the suite totals.\n",
    );
    out
}

/// Sec. IV pruning: path conditions with vs without library modeling.
pub fn pruning() -> String {
    let rows_data = measure_pruning(&Broadleaf);
    let mut out = String::from(
        "Path-condition pruning (Sec. IV): library modeling on Broadleaf unit tests\n",
    );
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                r.api.clone(),
                r.naive.to_string(),
                r.modeled.to_string(),
                format!("{:.0}x", r.reduction()),
            ]
        })
        .collect();
    out.push_str(&table(
        &["API", "naive (unmodeled)", "modeled", "reduction"],
        &rows,
    ));
    out.push_str(
        "\npaper: Broadleaf Ship drops 656K -> 2.7K (~243x) once drivers, built-ins and\n\
         containers are modeled; the simulated app shows the same order-of-magnitude cut.\n",
    );
    out
}

/// Figs. 10/11: throughput per client count per fix configuration.
pub fn figure(app_name: &str, quick: bool) -> String {
    let config = if quick {
        PerfConfig {
            client_counts: vec![8, 32],
            duration: Duration::from_millis(700),
            hot_products: 8,
            statement_delay: Duration::ZERO,
        }
    } else {
        PerfConfig::default()
    };
    let points = match app_name {
        "broadleaf" => run_perf_sweep(Broadleaf, &Fix::BROADLEAF, &config),
        "shopizer" => run_perf_sweep(Shopizer, &Fix::SHOPIZER, &config),
        other => panic!("unknown app {other}"),
    };
    let fig = if app_name == "broadleaf" {
        "Fig. 10"
    } else {
        "Fig. 11"
    };
    let mut out =
        format!("{fig}: {app_name} throughput (API/s) by client count and fix configuration\n");
    let max = points
        .iter()
        .map(|p| p.result.throughput)
        .fold(0.0_f64, f64::max);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.label.clone(),
                p.clients.to_string(),
                format!("{:.0}", p.result.throughput),
                format!("{:.0}", p.result.aborts_per_sec),
                bar(p.result.throughput, max, 30),
            ]
        })
        .collect();
    out.push_str(&table(
        &["config", "clients", "API/s", "aborts/s", ""],
        &rows,
    ));
    // Headline factor, like the paper's 39.5x / 4.5x.
    let best_clients = *config.client_counts.last().unwrap();
    let tput = |label: &str| {
        points
            .iter()
            .find(|p| p.label == label && p.clients == best_clients)
            .map(|p| p.result.throughput)
            .unwrap_or(0.0)
    };
    let enabled = tput("enable all");
    let disabled = tput("disable all");
    let _ = writeln!(
        out,
        "\nenable-all vs disable-all at {best_clients} clients: {:.1}x improvement \
         (paper: 39.5x Broadleaf / 4.5x Shopizer at 128 clients)",
        enabled / disabled.max(1e-9),
    );
    out
}

/// Observability export: run the full diagnosis pipeline on both apps
/// with the [`weseer_obs`] registry enabled and return
/// `(human_report, json_lines)` — the funnel/timing tables for stdout and
/// the per-app JSON-lines export for `--metrics-out`.
pub fn metrics_report() -> (String, String) {
    weseer_obs::set_enabled(true);
    let weseer = Weseer::new();
    let mut human = String::new();
    let mut json = String::new();
    for analysis in [weseer.analyze(&Broadleaf), weseer.analyze(&Shopizer)] {
        human.push_str(&weseer_obs::report::render_report(
            &analysis.metrics,
            &format!("{} diagnosis metrics", analysis.app),
            FUNNEL_STAGES,
        ));
        // Discharge points of the tiered fast path (Sec. "Tiered
        // solving" in the README): where each solver query was decided.
        let c = |name: &str| analysis.metrics.counter(name);
        let _ = writeln!(
            human,
            "SMT fast path: {} tier-0 discharged, {} tier-1 discharged \
             ({} sat / {} unsat), {} prefix kills, {} fell through \
             ({} full solves)",
            c("smt.fastpath.t0_simplified"),
            c("smt.fastpath.t1_sat") + c("smt.fastpath.t1_unsat"),
            c("smt.fastpath.t1_sat"),
            c("smt.fastpath.t1_unsat"),
            c("smt.fastpath.prefix_kill"),
            c("smt.fastpath.fallthrough"),
            c("smt.full_solve"),
        );
        // CDCL internals of the full solves that did run: how hard the
        // persistent SAT core worked and how much it carried across
        // queries (learned clauses survive within each pair's solver).
        let _ = writeln!(
            human,
            "CDCL core: {} conflicts, {} learned clauses, {} restarts, \
             {} propagations, {} DB reductions",
            c("smt.cdcl.conflicts"),
            c("smt.cdcl.learned"),
            c("smt.cdcl.restarts"),
            c("smt.cdcl.propagations"),
            c("smt.cdcl.db_reductions"),
        );
        // The verdict cache sits outside the funnel (hit/miss counts are
        // scheduling-dependent): report its hit rate separately.
        let hits = analysis.metrics.counter("smt.cache_hit");
        let misses = analysis.metrics.counter("smt.cache_miss");
        if hits + misses > 0 {
            let _ = writeln!(
                human,
                "SMT verdict cache: {hits} hits / {misses} misses ({:.1}% hit rate), \
                 pairs pruned by phase 1: {}",
                100.0 * hits as f64 / (hits + misses) as f64,
                analysis.metrics.counter("analyzer.pairs_pruned"),
            );
        }
        // Warm-vs-cold funnel of the incremental store (present only when
        // an analysis ran against one, e.g. via WESEER_STORE).
        let (sh, ss, sm) = (c("store.hit"), c("store.stale"), c("store.miss"));
        if sh + ss + sm > 0 {
            let temperature = if ss == 0 && sm == 0 {
                "warm: every phase reused"
            } else if sh == 0 {
                "cold: store filled from scratch"
            } else {
                "mixed: changed entries recomputed"
            };
            let _ = writeln!(
                human,
                "incremental store: {sh} hits / {ss} stale / {sm} misses ({temperature})",
            );
        }
        // Per-stage wall-clock attribution: where the run's time actually
        // went, from the pipeline spans, the analyzer's phase timers, and
        // the solver's per-solve wall clock.
        human.push_str(&stage_wallclock_table(&analysis.metrics));
        human.push('\n');
        json.push_str(&analysis.metrics.to_json_lines(Some(&analysis.app)));
    }
    (human, json)
}

/// Render the per-stage wall-clock attribution table for one analysis
/// delta: stage, number of timed intervals, total microseconds, and the
/// share of the accounted pipeline time. SMT rows are indented under
/// phase 3 (solves run inside it) and excluded from the share basis.
fn stage_wallclock_table(m: &weseer_obs::MetricsSnapshot) -> String {
    let span = |name: &str| {
        m.histogram(name)
            .map(|h| (h.count, h.sum))
            .unwrap_or((0, 0))
    };
    // Spans nest: paths are dotted under the enclosing pipeline span.
    let (pl_n, pl_us) = span("span.pipeline.analyze");
    let (tc_n, tc_us) = span("span.pipeline.analyze.pipeline.collect_traces");
    let (an_n, an_us) = span("span.pipeline.analyze.analyzer.diagnose");
    let (rp_n, rp_us) = span("span.pipeline.analyze.pipeline.replay");
    let phase = |name: &str| m.counter(name);
    let (p1, p2, p3) = (
        phase("analyzer.phase1_us"),
        phase("analyzer.phase2_us"),
        phase("analyzer.phase3_us"),
    );
    let (sv_n, sv_us) = span("smt.solve_us");
    let (fs_n, fs_us) = span("smt.full_solve_us");

    let total = pl_us.max(1);
    let pct = |us: u64| format!("{:.1}%", 100.0 * us as f64 / total as f64);
    let rows = vec![
        vec![
            "pipeline total".into(),
            pl_n.to_string(),
            pl_us.to_string(),
            pct(pl_us),
        ],
        vec![
            "trace collection".into(),
            tc_n.to_string(),
            tc_us.to_string(),
            pct(tc_us),
        ],
        vec![
            "diagnosis".into(),
            an_n.to_string(),
            an_us.to_string(),
            pct(an_us),
        ],
        vec![
            "  phase 1 (pair filter)".into(),
            "-".into(),
            p1.to_string(),
            pct(p1),
        ],
        vec![
            "  phase 2 (coarse cycles)".into(),
            "-".into(),
            p2.to_string(),
            pct(p2),
        ],
        vec![
            "  phase 3 (fine + SMT)".into(),
            "-".into(),
            p3.to_string(),
            pct(p3),
        ],
        vec![
            "    SMT queries (all tiers)".into(),
            sv_n.to_string(),
            sv_us.to_string(),
            pct(sv_us),
        ],
        vec![
            "    full DPLL(T) solves".into(),
            fs_n.to_string(),
            fs_us.to_string(),
            pct(fs_us),
        ],
        vec![
            "witness replay".into(),
            rp_n.to_string(),
            rp_us.to_string(),
            pct(rp_us),
        ],
    ];
    let mut out = String::from("per-stage wall-clock attribution:\n");
    out.push_str(&table(&["stage", "intervals", "wall (us)", "share"], &rows));
    out
}

/// Witness replay over both applications: every diagnosed cycle is
/// replayed for a concrete deadlocking schedule ([`weseer_replay`]).
/// Returns `(human report, witness JSON lines)`; the JSON side carries one
/// line per report and is byte-for-byte deterministic across runs and
/// thread counts (CI diffs it).
pub fn witness_report() -> (String, String) {
    let weseer = Weseer::new().with_replay();
    let mut human = String::new();
    let mut json = String::new();
    for analysis in [weseer.analyze(&Broadleaf), weseer.analyze(&Shopizer)] {
        let summary = analysis
            .replay
            .as_ref()
            .expect("with_replay() populates the summary");
        let stats = &analysis.diagnosis.stats;
        let (explored, pruned) = summary.schedule_totals();
        let _ = writeln!(human, "== {} witness replay ==", analysis.app);
        let _ = writeln!(
            human,
            "funnel: {} txn pairs -> {} after phase 1 -> {} coarse cycles -> \
             {} fine candidates -> {} SAT -> {} replay-confirmed \
             ({} not reproduced, {} skipped)",
            stats.txn_pairs,
            stats.pairs_after_phase1,
            stats.coarse_cycles,
            stats.fine_candidates,
            stats.smt_sat,
            summary.confirmed(),
            summary.not_reproduced(),
            summary.skipped(),
        );
        let _ = writeln!(
            human,
            "schedules: {explored} explored, {pruned} pruned by sleep sets"
        );
        let mut first_witness = true;
        for (report, verdict) in analysis.diagnosis.deadlocks.iter().zip(&summary.verdicts) {
            let _ = writeln!(
                human,
                "  {} <-> {}: {}",
                report.cycle.a_api,
                report.cycle.b_api,
                verdict.tag()
            );
            let witness_json = match verdict.witness() {
                Some(w) => {
                    if first_witness {
                        // Show one full schedule per app in the human report.
                        human.push_str(&indent(&w.render(), "    "));
                        first_witness = false;
                    }
                    w.to_json()
                }
                None => "null".to_string(),
            };
            let _ = writeln!(
                json,
                "{{\"app\":\"{}\",\"a_api\":\"{}\",\"b_api\":\"{}\",\"verdict\":\"{}\",\"witness\":{}}}",
                analysis.app,
                report.cycle.a_api,
                report.cycle.b_api,
                verdict.tag(),
                witness_json
            );
        }
        human.push('\n');
    }
    (human, json)
}

/// Result of the tiered-solving ablation.
pub struct Ablation {
    /// Human-readable per-app speedup tables.
    pub report: String,
    /// One JSON line summarizing the run (for `BENCH_smt.json`).
    pub bench_json: String,
    /// True if any tier configuration changed a verdict or a report —
    /// the tiers must be pure optimizations, so this fails CI.
    pub diverged: bool,
}

/// One tier configuration's measurements in the ablation.
struct AblationRow {
    label: &'static str,
    full_solve: u64,
    t0: u64,
    t1: u64,
    prefix_kill: u64,
    cache_hit: u64,
    cache_miss: u64,
    solve_wall_us: u64,
    /// Per-query wall-clock distribution (`smt.solve_us` delta).
    solve_us: Option<weseer_obs::HistogramSnapshot>,
    /// Per-full-DPLL(T)-solve wall-clock distribution
    /// (`smt.full_solve_us` delta).
    full_solve_us: Option<weseer_obs::HistogramSnapshot>,
    verdicts: (usize, usize, usize),
    reports: Vec<String>,
}

/// One configuration's `wallclock_per_solve` JSON object: query counts
/// with mean/p50/p90/p99 microseconds, for all queries and for the
/// queries that reached the full lazy-SMT solver.
fn wallclock_json(row: &AblationRow) -> String {
    let h = |hist: &Option<weseer_obs::HistogramSnapshot>| -> (u64, u64, u64, u64, u64) {
        match hist {
            Some(h) => (h.count, h.mean(), h.p50(), h.p90(), h.p99()),
            None => (0, 0, 0, 0, 0),
        }
    };
    let (n, mean, p50, p90, p99) = h(&row.solve_us);
    let (fn_, fmean, fp50, fp90, fp99) = h(&row.full_solve_us);
    format!(
        "{{\"solves\":{n},\"mean_us\":{mean},\"p50_us\":{p50},\"p90_us\":{p90},\
         \"p99_us\":{p99},\"full_solves\":{fn_},\"full_mean_us\":{fmean},\
         \"full_p50_us\":{fp50},\"full_p90_us\":{fp90},\"full_p99_us\":{fp99}}}"
    )
}

/// The verdict-cache hit rate reported for an ablation. Measured on the
/// "no tiers" baseline row (the last one): with all tiers enabled the
/// fast path discharges nearly every formula *before* the cache, so the
/// tiered row's hit/miss counts are 0/0 and the rate degenerates to
/// 0.000 — which is what `BENCH_smt.json` used to publish. The baseline
/// row routes every query through the cache and measures what the cache
/// actually saves.
fn ablation_cache_hit_rate(rows: &[AblationRow]) -> f64 {
    let baseline = rows.last().expect("at least the baseline row");
    let total = baseline.cache_hit + baseline.cache_miss;
    if total > 0 {
        baseline.cache_hit as f64 / total as f64
    } else {
        0.0
    }
}

/// The per-app JSON object for `BENCH_smt.json`: headline tiered-vs-
/// baseline numbers plus one `wallclock_per_solve` row *per named
/// configuration* — the row names are exactly
/// [`weseer_smt::TierConfig::ablation_configs`]'s labels, and CI greps
/// for each of them so the published bench can never drift from the
/// real knob set again.
fn ablation_json_entry(app_name: &str, rows: &[AblationRow]) -> String {
    let baseline = rows.last().expect("at least the baseline row");
    let tiered = &rows[0];
    let per_config: Vec<String> = rows
        .iter()
        .map(|r| format!("\"{}\":{}", r.label, wallclock_json(r)))
        .collect();
    format!(
        "\"{app_name}\":{{\"full_solve_baseline\":{},\"full_solve_tiered\":{},\
         \"t0_discharged\":{},\"t1_discharged\":{},\"prefix_kills\":{},\
         \"cache_hit_rate\":{:.3},\"solver_wall_us_baseline\":{},\"solver_wall_us_tiered\":{},\
         \"wallclock_per_solve\":{{{}}}}}",
        baseline.full_solve,
        tiered.full_solve,
        tiered.t0,
        tiered.t1,
        tiered.prefix_kill,
        ablation_cache_hit_rate(rows),
        baseline.solve_wall_us,
        tiered.solve_wall_us,
        per_config.join(","),
    )
}

/// `--smt-ablation`: diagnose each app once per tier configuration
/// (all tiers, each tier individually disabled, all off) on the same
/// traces, assert the verdicts and rendered reports are identical across
/// configurations, and render the full-solver/wall-time reduction table.
pub fn smt_ablation(apps: &[&str]) -> Ablation {
    use weseer_analyzer::diagnose;
    use weseer_apps::Fixes;
    use weseer_smt::TierConfig;

    // The knob grid lives next to the knobs themselves: one named row
    // per real `TierConfig` field (plus the all-on / all-off anchors),
    // so adding a knob automatically adds its ablation row here and its
    // `wallclock_per_solve` entry in `BENCH_smt.json`.
    let configs = TierConfig::ablation_configs();

    weseer_obs::set_enabled(true);
    let weseer = Weseer::new();
    let mut report = String::from("Tiered SMT fast-path ablation\n");
    let mut diverged = false;
    let mut json_apps = Vec::new();

    for &app_name in apps {
        let app: &dyn ECommerceApp = match app_name {
            "broadleaf" => &Broadleaf,
            "shopizer" => &Shopizer,
            other => panic!("unknown app {other}"),
        };
        let (traces, _db) = weseer.collect_traces(app, &Fixes::none());
        let catalog = app.catalog();

        let rows: Vec<AblationRow> = configs
            .iter()
            .map(|(label, tiers)| {
                let mut config = weseer.config.clone();
                config.solver.tiers = *tiers;
                let before = weseer_obs::snapshot();
                let diagnosis = diagnose(&catalog, &traces, &config);
                let m = weseer_obs::snapshot().delta_since(&before);
                AblationRow {
                    label,
                    full_solve: m.counter("smt.full_solve"),
                    t0: m.counter("smt.fastpath.t0_simplified"),
                    t1: m.counter("smt.fastpath.t1_sat") + m.counter("smt.fastpath.t1_unsat"),
                    prefix_kill: m.counter("smt.fastpath.prefix_kill"),
                    cache_hit: m.counter("smt.cache_hit"),
                    cache_miss: m.counter("smt.cache_miss"),
                    solve_wall_us: m.histogram("smt.solve_us").map(|h| h.sum).unwrap_or(0),
                    solve_us: m.histogram("smt.solve_us").cloned(),
                    full_solve_us: m.histogram("smt.full_solve_us").cloned(),
                    verdicts: (
                        diagnosis.stats.smt_sat,
                        diagnosis.stats.smt_unsat,
                        diagnosis.stats.smt_unknown,
                    ),
                    // Cycle identities only: a tier-1 SAT witness model may
                    // legitimately differ from the full solver's, but which
                    // deadlocks are reported (and their order) must not.
                    reports: diagnosis
                        .deadlocks
                        .iter()
                        .map(|r| format!("{:?}", r.cycle))
                        .collect(),
                }
            })
            .collect();

        // The "no tiers" row is the reference semantics: every other
        // configuration must reproduce its reports byte-for-byte and
        // must not *flip* any verdict. It may *refine* the baseline:
        // the CDCL core decides queries whose search the chronological
        // DPLL baseline abandons at its decision budget, so a row may
        // turn baseline Unknowns into Unsats (never the reverse, and
        // never touching the sat count — a new sat would surface as a
        // report difference).
        let baseline = rows.last().unwrap();
        for row in &rows {
            let (s, u, k) = row.verdicts;
            let (bs, bu, bk) = baseline.verdicts;
            let refines = s == bs && u >= bu && k <= bk && u + k == bu + bk;
            if !refines {
                diverged = true;
                let _ = writeln!(
                    report,
                    "DIVERGENCE on {app_name}: '{}' produced verdicts {:?} vs baseline {:?}",
                    row.label, row.verdicts, baseline.verdicts
                );
            }
            if row.reports != baseline.reports {
                diverged = true;
                let first_diff = row
                    .reports
                    .iter()
                    .zip(&baseline.reports)
                    .find(|(a, b)| a != b)
                    .map(|(a, b)| format!("first differing cycle: {a} vs {b}"))
                    .unwrap_or_else(|| "one list is a prefix of the other".into());
                let _ = writeln!(
                    report,
                    "DIVERGENCE on {app_name}: '{}' reported {} cycles vs baseline {} ({first_diff})",
                    row.label,
                    row.reports.len(),
                    baseline.reports.len(),
                );
            }
        }

        let tiered = &rows[0];
        let table_rows: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.label.to_string(),
                    r.full_solve.to_string(),
                    r.t0.to_string(),
                    r.t1.to_string(),
                    r.prefix_kill.to_string(),
                    format!("{}/{}", r.cache_hit, r.cache_miss),
                    format!("{:.1}", r.solve_wall_us as f64 / 1000.0),
                    match &r.full_solve_us {
                        Some(h) if h.count > 0 => format!("{}/{}", h.mean(), h.p99()),
                        _ => "-".to_string(),
                    },
                    format!("{:?}", r.verdicts),
                ]
            })
            .collect();
        let _ = writeln!(report, "\n== {app_name} ==");
        report.push_str(&table(
            &[
                "config",
                "full solves",
                "t0 discharged",
                "t1 discharged",
                "prefix kills",
                "cache hit/miss",
                "solver wall (ms)",
                "full solve mean/p99 (us)",
                "(sat, unsat, unknown)",
            ],
            &table_rows,
        ));
        let _ = writeln!(
            report,
            "full-solver reduction (no tiers -> all tiers): {} -> {} ({:.2}x)",
            baseline.full_solve,
            tiered.full_solve,
            baseline.full_solve as f64 / tiered.full_solve.max(1) as f64,
        );

        json_apps.push(ablation_json_entry(app_name, &rows));
    }

    let bench_json = format!(
        "{{\"bench\":\"smt_tiered_ablation\",\"diverged\":{},{}}}\n",
        diverged,
        json_apps.join(",")
    );
    Ablation {
        report,
        bench_json,
        diverged,
    }
}

/// Result of the incremental (cold → warm → dirtied) benchmark.
pub struct IncrementalBench {
    /// Human-readable wall-time table.
    pub report: String,
    /// One JSON line for `BENCH_incremental.json`.
    pub bench_json: String,
    /// True if a warm or dirtied run produced different reports/witnesses
    /// than the cold run, or if a warm run did any full solving or
    /// schedule exploration — all of which fail CI.
    pub diverged: bool,
}

/// The byte-comparison view of one analysis: every deadlock report's
/// rendered text, every replay verdict (witnesses as canonical JSON),
/// and the funnel counters. A warm store run must reproduce this
/// byte-for-byte.
pub fn render_analysis(analysis: &weseer_core::AppAnalysis) -> String {
    let mut s = String::new();
    for r in &analysis.diagnosis.deadlocks {
        let _ = writeln!(s, "{r}");
    }
    if let Some(replay) = &analysis.replay {
        for v in &replay.verdicts {
            match v.witness() {
                Some(w) => {
                    let _ = writeln!(s, "{}", w.to_json());
                }
                None => {
                    let _ = writeln!(s, "{}", v.tag());
                }
            }
        }
    }
    let st = &analysis.diagnosis.stats;
    let _ = writeln!(
        s,
        "funnel: txn_pairs={} phase1={} coarse={} prefix_kills={} fine={} sat={} unsat={} unknown={}",
        st.txn_pairs,
        st.pairs_after_phase1,
        st.coarse_cycles,
        st.prefix_kills,
        st.fine_candidates,
        st.smt_sat,
        st.smt_unsat,
        st.smt_unknown,
    );
    s
}

/// `--incremental-bench`: for each app, run the full pipeline (diagnosis
/// and witness replay) three times against one fresh store file — cold
/// (fills the store), warm (nothing changed), and with the `Ship` trace
/// dirtied — timing each run. The warm and dirtied outputs must be
/// byte-identical to the cold one, and the warm run must do zero full
/// SMT solves and explore zero replay schedules. Writes the wall times
/// and store hit rates to `BENCH_incremental.json`.
pub fn incremental_bench(apps: &[&str]) -> IncrementalBench {
    use std::time::Instant;

    weseer_obs::set_enabled(true);
    let mut report = String::from("Incremental warm starts: cold -> warm -> one trace dirtied\n");
    let mut diverged = false;
    let mut json_apps = Vec::new();
    let mut rows = Vec::new();

    for &app_name in apps {
        let app: &dyn ECommerceApp = match app_name {
            "broadleaf" => &Broadleaf,
            "shopizer" => &Shopizer,
            other => panic!("unknown app {other}"),
        };
        let path = std::env::temp_dir().join(format!(
            "weseer-incremental-{}-{app_name}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);

        let run = |dirty: Option<&str>| {
            let mut weseer = Weseer::new()
                .with_replay()
                .with_store(&path)
                .expect("open incremental store");
            if let Some(api) = dirty {
                weseer = weseer.with_dirty(api);
            }
            let before = weseer_obs::snapshot();
            let start = Instant::now();
            let analysis = weseer.analyze(app);
            let wall = start.elapsed();
            let metrics = weseer_obs::snapshot().delta_since(&before);
            (render_analysis(&analysis), wall, metrics)
        };
        let (cold_out, cold, _) = run(None);
        let (warm_out, warm, wm) = run(None);
        let (dirty_out, dirty, dm) = run(Some("Ship"));
        let _ = std::fs::remove_file(&path);

        for (label, out) in [("warm", &warm_out), ("dirtied", &dirty_out)] {
            if *out != cold_out {
                diverged = true;
                let _ = writeln!(
                    report,
                    "DIVERGENCE on {app_name}: {label} output differs from cold"
                );
            }
        }
        let warm_full = wm.counter("smt.full_solve");
        let warm_sched = wm.counter("replay.schedules_explored");
        if warm_full > 0 || warm_sched > 0 {
            diverged = true;
            let _ = writeln!(
                report,
                "NOT WARM on {app_name}: {warm_full} full solves, \
                 {warm_sched} schedules explored on the warm run"
            );
        }

        let speedup = cold.as_secs_f64() / warm.as_secs_f64().max(1e-9);
        rows.push(vec![
            app_name.to_string(),
            format!("{:.1}", cold.as_secs_f64() * 1000.0),
            format!("{:.1}", warm.as_secs_f64() * 1000.0),
            format!("{:.1}", dirty.as_secs_f64() * 1000.0),
            format!("{speedup:.1}x"),
            format!(
                "{}/{}/{}",
                wm.counter("store.hit"),
                wm.counter("store.stale"),
                wm.counter("store.miss")
            ),
            format!(
                "{}/{}/{}",
                dm.counter("store.hit"),
                dm.counter("store.stale"),
                dm.counter("store.miss")
            ),
        ]);
        json_apps.push(format!(
            "\"{app_name}\":{{\"cold_us\":{},\"warm_us\":{},\"dirty1_us\":{},\
             \"speedup\":{speedup:.1},\"warm_hit\":{},\"warm_stale\":{},\"warm_miss\":{},\
             \"dirty_hit\":{},\"dirty_stale\":{},\"warm_full_solves\":{warm_full},\
             \"warm_schedules_explored\":{warm_sched}}}",
            cold.as_micros(),
            warm.as_micros(),
            dirty.as_micros(),
            wm.counter("store.hit"),
            wm.counter("store.stale"),
            wm.counter("store.miss"),
            dm.counter("store.hit"),
            dm.counter("store.stale"),
        ));
    }

    report.push_str(&table(
        &[
            "app",
            "cold (ms)",
            "warm (ms)",
            "dirty1 (ms)",
            "speedup",
            "warm hit/stale/miss",
            "dirty hit/stale/miss",
        ],
        &rows,
    ));
    let bench_json = format!(
        "{{\"bench\":\"incremental_warm_start\",\"diverged\":{},{}}}\n",
        diverged,
        json_apps.join(",")
    );
    IncrementalBench {
        report,
        bench_json,
        diverged,
    }
}

/// Result of the timeline-overhead benchmark.
pub struct TimelineBench {
    /// Human-readable overhead table.
    pub report: String,
    /// One JSON line for `BENCH_timeline.json`.
    pub bench_json: String,
    /// True if enabling the timeline changed any report, verdict, or
    /// witness byte — recording must be a pure observer, so this fails CI.
    pub diverged: bool,
}

/// `--timeline-bench`: for each app, run the full pipeline (diagnosis and
/// witness replay) with the trace timeline off and then on, timing both.
/// The outputs must be byte-identical — the timeline is a pure observer —
/// and the measured overhead lands in `BENCH_timeline.json` (reported,
/// not gated: wall-clock ratios are too noisy for CI, the target is <3%).
/// The metrics registry stays off during the timed runs so the numbers
/// isolate the timeline's own cost.
pub fn timeline_bench(apps: &[&str]) -> TimelineBench {
    use std::time::Instant;

    let registry_was_enabled = weseer_obs::enabled();
    weseer_obs::set_enabled(false);
    let mut report = String::from("Trace-timeline overhead: identical runs, timeline off vs on\n");
    let mut diverged = false;
    let mut json_apps = Vec::new();
    let mut rows = Vec::new();

    for &app_name in apps {
        let app: &dyn ECommerceApp = match app_name {
            "broadleaf" => &Broadleaf,
            "shopizer" => &Shopizer,
            other => panic!("unknown app {other}"),
        };
        let run = |timeline: bool| {
            weseer_obs::timeline::reset();
            weseer_obs::timeline::set_enabled(timeline);
            let weseer = Weseer::new().with_replay();
            let start = Instant::now();
            let analysis = weseer.analyze(app);
            let wall = start.elapsed();
            weseer_obs::timeline::set_enabled(false);
            let snap = weseer_obs::timeline::snapshot();
            (render_analysis(&analysis), wall, snap)
        };
        // One throwaway run to warm allocators and caches, then the pair.
        let _ = run(false);
        let (off_out, off, _) = run(false);
        let (on_out, on, snap) = run(true);

        if on_out != off_out {
            diverged = true;
            let _ = writeln!(
                report,
                "DIVERGENCE on {app_name}: output with the timeline on \
                 differs from the timeline-off run"
            );
        }
        let overhead = 100.0 * (on.as_secs_f64() - off.as_secs_f64()) / off.as_secs_f64().max(1e-9);
        rows.push(vec![
            app_name.to_string(),
            format!("{:.1}", off.as_secs_f64() * 1000.0),
            format!("{:.1}", on.as_secs_f64() * 1000.0),
            format!("{overhead:+.1}%"),
            snap.records.len().to_string(),
            snap.dropped.to_string(),
            snap.lanes.len().to_string(),
        ]);
        json_apps.push(format!(
            "\"{app_name}\":{{\"off_us\":{},\"on_us\":{},\"overhead_pct\":{overhead:.1},\
             \"records\":{},\"dropped\":{},\"lanes\":{}}}",
            off.as_micros(),
            on.as_micros(),
            snap.records.len(),
            snap.dropped,
            snap.lanes.len(),
        ));
    }
    weseer_obs::set_enabled(registry_was_enabled);

    report.push_str(&table(
        &[
            "app", "off (ms)", "on (ms)", "overhead", "records", "dropped", "lanes",
        ],
        &rows,
    ));
    report.push_str("target: <3% overhead with the timeline on (recorded, not CI-gated)\n");
    let bench_json = format!(
        "{{\"bench\":\"timeline_overhead\",\"diverged\":{},{}}}\n",
        diverged,
        json_apps.join(",")
    );
    TimelineBench {
        report,
        bench_json,
        diverged,
    }
}

/// `--anomaly-out`: run the diagnosis pipeline on both apps at the
/// session isolation level (`--isolation` / `WESEER_ISOLATION`) and
/// return `(human report, anomaly JSON lines)` — one line per app with
/// the candidate/verdict grid from the static anomaly oracle and the
/// interleaving explorer, or `null` under the default serializable level
/// (the anomaly stage only runs under weak isolation, keeping the
/// default output byte-identical to the pre-MVCC tool).
pub fn anomaly_report() -> (String, String) {
    let weseer = Weseer::new();
    let mut human = String::new();
    let mut json = String::new();
    for analysis in [weseer.analyze(&Broadleaf), weseer.analyze(&Shopizer)] {
        match &analysis.anomalies {
            Some(a) => {
                let _ = writeln!(
                    human,
                    "== {} anomaly screen at {} ==",
                    analysis.app, a.isolation
                );
                let _ = writeln!(
                    human,
                    "{} candidates ({} beyond the cap), {} confirmed",
                    a.candidates.len() + a.truncated,
                    a.truncated,
                    a.confirmed().len(),
                );
                for (c, v) in a.candidates.iter().zip(&a.verdicts) {
                    let _ = writeln!(
                        human,
                        "  {} on {}: {} vs {} -> {}",
                        c.kind,
                        c.table,
                        c.a_api,
                        c.b_api,
                        v.tag()
                    );
                }
                let _ = writeln!(
                    json,
                    "{{\"app\":\"{}\",\"anomalies\":{}}}",
                    analysis.app,
                    a.to_json()
                );
            }
            None => {
                let _ = writeln!(
                    human,
                    "== {} anomaly screen == serializable 2PL: stage skipped",
                    analysis.app
                );
                let _ = writeln!(json, "{{\"app\":\"{}\",\"anomalies\":null}}", analysis.app);
            }
        }
    }
    (human, json)
}

/// Result of the MVCC isolation-level anomaly benchmark.
pub struct MvccBench {
    /// Human-readable per-workload, per-level verdict table.
    pub report: String,
    /// One JSON line for `BENCH_mvcc.json`.
    pub bench_json: String,
    /// True if the isolation levels failed to separate: a planted anomaly
    /// survived serializable, a weak level missed its anomaly, or no
    /// weak/strong divergence was observed at all. Fails CI.
    pub failed: bool,
}

/// One planted anomaly workload for the MVCC bench: a pair of transaction
/// instances over a freshly seeded database.
struct MvccWorkload {
    name: &'static str,
    /// The anomaly kind the weakest susceptible level must confirm.
    expected_kind: &'static str,
    /// The weakest level where `expected_kind` must show up.
    must_confirm_at: IsolationLevel,
    base: weseer_db::Database,
    instances: Vec<weseer_replay::Instance>,
}

/// The classic lost-update pair: two read-modify-write withdrawals over
/// one account row (same shape as `examples/anomaly_lost_update.rs`).
fn mvcc_lost_update() -> MvccWorkload {
    use weseer_sqlir::{Catalog, ColType, TableBuilder, Value};
    let catalog = Catalog::new(vec![TableBuilder::new("Account")
        .col("ID", ColType::Int)
        .col("BAL", ColType::Int)
        .primary_key(&["ID"])
        .build()
        .unwrap()])
    .unwrap();
    let base = weseer_db::Database::new(catalog);
    base.seed("Account", vec![vec![Value::Int(1), Value::Int(100)]]);
    MvccWorkload {
        name: "lost_update",
        expected_kind: "lost-update",
        must_confirm_at: IsolationLevel::ReadCommitted,
        base,
        instances: vec![
            mvcc_instance(
                "A1",
                &[
                    ("SELECT * FROM Account a WHERE a.ID = ?", &[1]),
                    ("UPDATE Account SET BAL = ? WHERE ID = ?", &[90, 1]),
                ],
            ),
            mvcc_instance(
                "A2",
                &[
                    ("SELECT * FROM Account a WHERE a.ID = ?", &[1]),
                    ("UPDATE Account SET BAL = ? WHERE ID = ?", &[95, 1]),
                ],
            ),
        ],
    }
}

/// The on-call write-skew pair: both sessions check the roster, then each
/// signs off a different doctor (same shape as
/// `examples/anomaly_write_skew.rs`).
fn mvcc_write_skew() -> MvccWorkload {
    use weseer_sqlir::{Catalog, ColType, TableBuilder, Value};
    let catalog = Catalog::new(vec![TableBuilder::new("Doctors")
        .col("ID", ColType::Int)
        .col("ONCALL", ColType::Int)
        .primary_key(&["ID"])
        .build()
        .unwrap()])
    .unwrap();
    let base = weseer_db::Database::new(catalog);
    base.seed(
        "Doctors",
        vec![
            vec![Value::Int(1), Value::Int(1)],
            vec![Value::Int(2), Value::Int(1)],
        ],
    );
    MvccWorkload {
        name: "write_skew",
        expected_kind: "write-skew",
        must_confirm_at: IsolationLevel::Snapshot,
        base,
        instances: vec![
            mvcc_instance(
                "A1",
                &[
                    ("SELECT * FROM Doctors d WHERE d.ONCALL = ?", &[1]),
                    ("UPDATE Doctors SET ONCALL = ? WHERE ID = ?", &[0, 1]),
                ],
            ),
            mvcc_instance(
                "A2",
                &[
                    ("SELECT * FROM Doctors d WHERE d.ONCALL = ?", &[1]),
                    ("UPDATE Doctors SET ONCALL = ? WHERE ID = ?", &[0, 2]),
                ],
            ),
        ],
    }
}

fn mvcc_instance(name: &str, stmts: &[(&str, &[i64])]) -> weseer_replay::Instance {
    use weseer_sqlir::{parser::parse, Value};
    weseer_replay::Instance {
        name: name.into(),
        stmts: stmts
            .iter()
            .enumerate()
            .map(|(i, (sql, ps))| {
                weseer_replay::ConcreteStmt::new(
                    i + 1,
                    parse(sql).unwrap(),
                    ps.iter().map(|&v| Value::Int(v)).collect(),
                )
            })
            .collect(),
    }
}

/// `--mvcc-bench`: explore both planted anomaly workloads at every
/// isolation level and verify the levels separate — the lost update is
/// confirmed at read-committed, the write skew at snapshot, and both
/// vanish under the default serializable 2PL. Writes the per-cell
/// verdict grid to `BENCH_mvcc.json`; the weak/strong divergence count
/// must be nonzero and serializable must be clean, otherwise CI fails.
pub fn mvcc_bench() -> MvccBench {
    use weseer_replay::{explore_anomalies, AnomalyOutcome, ReplayConfig};

    let mut report = String::from("MVCC anomaly oracle: planted workloads per isolation level\n");
    let mut failed = false;
    let mut divergence = 0usize;
    let mut rows = Vec::new();
    let mut json_workloads = Vec::new();

    for workload in [mvcc_lost_update(), mvcc_write_skew()] {
        let apis: Vec<String> = vec!["ApiA".into(), "ApiB".into()];
        let mut json_cells = Vec::new();
        for level in IsolationLevel::ALL {
            let out = explore_anomalies(
                &workload.base,
                &workload.instances,
                &apis,
                level,
                &ReplayConfig::default(),
            );
            let (confirmed, kinds, explored, pruned) = match &out {
                AnomalyOutcome::Anomalous(w) => {
                    let mut kinds: Vec<String> =
                        w.anomalies.iter().map(|a| a.kind.clone()).collect();
                    kinds.dedup();
                    (true, kinds, w.schedules_explored, w.schedules_pruned)
                }
                AnomalyOutcome::Clean { explored, pruned } => {
                    (false, Vec::new(), *explored, *pruned)
                }
            };
            if confirmed {
                divergence += 1;
            }
            if level == IsolationLevel::Serializable && confirmed {
                failed = true;
                let _ = writeln!(
                    report,
                    "FAILURE: {} reported an anomaly under serializable 2PL",
                    workload.name
                );
            }
            if level == workload.must_confirm_at
                && !kinds.iter().any(|k| k == workload.expected_kind)
            {
                failed = true;
                let _ = writeln!(
                    report,
                    "FAILURE: {} did not confirm {} at {}",
                    workload.name,
                    workload.expected_kind,
                    level.name()
                );
            }
            rows.push(vec![
                workload.name.to_string(),
                level.name().to_string(),
                if confirmed { "ANOMALOUS" } else { "clean" }.to_string(),
                if kinds.is_empty() {
                    "-".to_string()
                } else {
                    kinds.join(",")
                },
                explored.to_string(),
                pruned.to_string(),
            ]);
            json_cells.push(format!(
                "\"{}\":{{\"confirmed\":{confirmed},\"kinds\":[{}],\
                 \"schedules_explored\":{explored},\"schedules_pruned\":{pruned}}}",
                level.name(),
                kinds
                    .iter()
                    .map(|k| format!("\"{k}\""))
                    .collect::<Vec<_>>()
                    .join(",")
            ));
        }
        json_workloads.push(format!(
            "\"{}\":{{{}}}",
            workload.name,
            json_cells.join(",")
        ));
    }
    if divergence == 0 {
        failed = true;
        report.push_str("FAILURE: no isolation level diverged from serializable\n");
    }

    report.push_str(&table(
        &[
            "workload",
            "isolation",
            "verdict",
            "anomalies",
            "explored",
            "pruned",
        ],
        &rows,
    ));
    let _ = writeln!(
        report,
        "weak/strong divergence: {divergence} anomalous cells \
         (lost update at read-committed, write skew at snapshot, \
         serializable clean)"
    );
    let bench_json = format!(
        "{{\"bench\":\"mvcc_anomaly\",\"failed\":{failed},\"divergence\":{divergence},{}}}\n",
        json_workloads.join(",")
    );
    MvccBench {
        report,
        bench_json,
        failed,
    }
}

/// `--verdicts-out`: both apps' batch-pipeline verdicts rendered in the
/// serving daemon's wire format ([`weseer_serve::verdict_line`]),
/// broadleaf first then shopizer — the exact bytes `GET /analyze/<app>`
/// streams, so CI can byte-diff daemon output against this file.
pub fn batch_verdicts() -> (String, String) {
    let mut human = String::from("Batch verdicts (serving wire format):\n");
    let mut lines = String::new();
    for &name in &["broadleaf", "shopizer"] {
        let app: &dyn ECommerceApp = match name {
            "broadleaf" => &Broadleaf,
            _ => &Shopizer,
        };
        let analysis = Weseer::new().analyze(app);
        let _ = writeln!(
            human,
            "  {name}: {} verdicts",
            analysis.diagnosis.deadlocks.len()
        );
        for r in &analysis.diagnosis.deadlocks {
            lines.push_str(&weseer_serve::verdict_line(name, r));
        }
    }
    (human, lines)
}

fn indent(text: &str, pad: &str) -> String {
    let mut out = String::new();
    for line in text.lines() {
        let _ = writeln!(out, "{pad}{line}");
    }
    out
}

/// The aborts-per-second claim of Sec. VII-D (904 → 0 at 128 clients).
pub fn aborts_claim(quick: bool) -> String {
    let clients = if quick { 16 } else { 128 };
    let config = PerfConfig {
        client_counts: vec![clients],
        duration: if quick {
            Duration::from_millis(700)
        } else {
            Duration::from_secs(2)
        },
        hot_products: 8,
        statement_delay: Duration::ZERO,
    };
    let points = run_perf_sweep(Broadleaf, &[], &config);
    let enabled = &points[0];
    let disabled = &points[1];
    format!(
        "Sec. VII-D aborts/second, Broadleaf @ {clients} clients:\n\
         disable all: {:.0} aborts/s   enable all: {:.0} aborts/s\n\
         (paper: 904 -> 0 at 128 clients)\n",
        disabled.result.aborts_per_sec, enabled.result.aborts_per_sec
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_static_content() {
        let t = table1();
        assert!(t.contains("Register"));
        assert!(t.contains("Checkout"));
        assert!(t.contains("Payment"));
    }

    #[test]
    fn ablation_hit_rate_comes_from_the_baseline_row() {
        let row = |label, cache_hit, cache_miss| AblationRow {
            label,
            full_solve: 0,
            t0: 0,
            t1: 0,
            prefix_kill: 0,
            cache_hit,
            cache_miss,
            solve_wall_us: 0,
            solve_us: None,
            full_solve_us: None,
            verdicts: (0, 0, 0),
            reports: Vec::new(),
        };
        // With all tiers on, no formula reaches the cache (0/0 on the
        // tiered row); the baseline row carries the real cache traffic.
        // The rate must come from the baseline, not degenerate to 0.000.
        let rows = vec![row("all tiers", 0, 0), row("no tiers", 30, 10)];
        assert!((ablation_cache_hit_rate(&rows) - 0.75).abs() < 1e-9);
        let json = ablation_json_entry("broadleaf", &rows);
        assert!(json.contains("\"cache_hit_rate\":0.750"), "{json}");
    }

    #[test]
    fn ablation_json_has_a_row_per_real_knob() {
        // `BENCH_smt.json` once published a `no_incremental` row no knob
        // produced. The row set now *is* the knob grid: every named
        // configuration gets its own `wallclock_per_solve` entry.
        let rows: Vec<AblationRow> = weseer_smt::TierConfig::ablation_configs()
            .into_iter()
            .map(|(label, _)| AblationRow {
                label,
                full_solve: 0,
                t0: 0,
                t1: 0,
                prefix_kill: 0,
                cache_hit: 0,
                cache_miss: 0,
                solve_wall_us: 0,
                solve_us: None,
                full_solve_us: None,
                verdicts: (0, 0, 0),
                reports: Vec::new(),
            })
            .collect();
        let json = ablation_json_entry("shopizer", &rows);
        for name in [
            "all_tiers",
            "no_simplify",
            "no_presolve",
            "no_prefix",
            "no_cdcl",
            "no_incremental",
            "no_tiers",
        ] {
            assert!(
                json.contains(&format!("\"{name}\":{{\"solves\"")),
                "missing per-config row {name} in {json}"
            );
        }
    }

    #[test]
    fn mvcc_bench_levels_separate() {
        let bench = mvcc_bench();
        assert!(!bench.failed, "{}", bench.report);
        assert!(bench.bench_json.starts_with("{\"bench\":\"mvcc_anomaly\""));
        assert!(bench.bench_json.contains("\"failed\":false"));
        assert!(bench.bench_json.contains("\"lost_update\""));
        assert!(bench.bench_json.contains("\"write_skew\""));
        // The grid is fully deterministic (no wall-clock fields): CI can
        // diff BENCH_mvcc.json across runs.
        assert_eq!(bench.bench_json, mvcc_bench().bench_json);
    }
}

//! The per-experiment reproduction drivers: one function per table/figure
//! of the paper, each returning rendered text (consumed by the
//! `reproduce` binary and by EXPERIMENTS.md).

use crate::render::{bar, table};
use std::fmt::Write as _;
use std::time::Duration;
use weseer_apps::{Broadleaf, ECommerceApp, Fix, KnownDeadlock, Shopizer};
use weseer_core::{
    measure_overhead, measure_pruning, run_perf_sweep, PerfConfig, Weseer, FUNNEL_STAGES,
};

/// Table I: the target APIs with inputs and invocation counts.
pub fn table1() -> String {
    let rows = vec![
        vec![
            "Register".into(),
            "Register one user".into(),
            "username, email, password, password for confirmation".into(),
            "1".into(),
            "1".into(),
        ],
        vec![
            "Add".into(),
            "Add one product to cart".into(),
            "userId, productId".into(),
            "3".into(),
            "3".into(),
        ],
        vec![
            "Ship".into(),
            "Edit user's shipment information".into(),
            "userId, shipment address, ...".into(),
            "1".into(),
            "1".into(),
        ],
        vec![
            "Payment".into(),
            "Edit user's payment information".into(),
            "userId, payment method, amount".into(),
            "1".into(),
            "-".into(),
        ],
        vec![
            "Checkout".into(),
            "Checkout the order".into(),
            "userId".into(),
            "1".into(),
            "1".into(),
        ],
    ];
    let mut out = String::from("Table I: target APIs\n");
    out.push_str(&table(
        &["API", "Description", "Input", "Broadleaf", "Shopizer"],
        &rows,
    ));
    // Verify the simulated apps actually expose these unit tests.
    let bl: Vec<&str> = Broadleaf.unit_tests().to_vec();
    let sz: Vec<&str> = Shopizer.unit_tests().to_vec();
    let _ = writeln!(out, "\nBroadleaf unit tests: {bl:?}");
    let _ = writeln!(out, "Shopizer unit tests:  {sz:?}");
    out
}

/// Table II: run WeSEER on both apps and print the found deadlock rows.
pub fn table2() -> String {
    let weseer = Weseer::new();
    let mut out = String::from("Table II: deadlocks found by WeSEER\n");
    let mut rows = Vec::new();
    let mut found_ids = 0usize;
    for analysis in [weseer.analyze(&Broadleaf), weseer.analyze(&Shopizer)] {
        for row in KnownDeadlock::TABLE2 {
            if row.app() != analysis.app {
                continue;
            }
            let count = analysis.groups.get(&row).copied().unwrap_or(0);
            let status = if count > 0 { "FOUND" } else { "missing" };
            if count > 0 {
                found_ids += row.id_count();
            }
            rows.push(vec![
                analysis.app.clone(),
                row.ids().to_string(),
                row.description().to_string(),
                row.fix().map(|f| f.label()).unwrap_or_default(),
                row.fix()
                    .map(|f| f.description().to_string())
                    .unwrap_or_default(),
                format!("{status} ({count} cycles)"),
            ]);
        }
        let fp = analysis
            .groups
            .get(&KnownDeadlock::FpAppLocked)
            .copied()
            .unwrap_or(0);
        rows.push(vec![
            analysis.app.clone(),
            "(fp)".into(),
            "app-level-locked logic (known false positives)".into(),
            "-".into(),
            "-".into(),
            format!("{fp} cycles"),
        ]);
    }
    out.push_str(&table(
        &[
            "App",
            "Id",
            "Deadlock-prone txn",
            "Fix",
            "Fixing approach",
            "WeSEER",
        ],
        &rows,
    ));
    let _ = writeln!(
        out,
        "\npaper: 18 deadlocks (d1–d18); reproduced: {found_ids}/18 covered by found rows"
    );
    out
}

/// Sec. VII-B baseline: coarse-grained STEPDAD/REDACT cycle counts vs
/// WeSEER's confirmed deadlocks.
pub fn baseline() -> String {
    let weseer = Weseer::new();
    let mut out = String::from("Coarse-grained baseline (STEPDAD/REDACT) vs WeSEER fine-grained\n");
    let mut rows = Vec::new();
    for analysis in [weseer.analyze(&Broadleaf), weseer.analyze(&Shopizer)] {
        rows.push(vec![
            analysis.app.clone(),
            analysis.coarse_cycles.to_string(),
            analysis.diagnosis.deadlocks.len().to_string(),
            analysis.rows_found().len().to_string(),
        ]);
    }
    out.push_str(&table(
        &[
            "App",
            "coarse hold-and-wait cycles",
            "SMT-confirmed cycles",
            "Table II rows",
        ],
        &rows,
    ));
    out.push_str(
        "\npaper: the coarse approach emits 18,384 cycles on the authors' traces — \
         impractical to triage; the fine-grained phases cut this to the real deadlocks.\n",
    );
    out
}

/// Table III: unit-test execution time per engine mode.
pub fn table3(repetitions: usize) -> String {
    let rows_data = measure_overhead(&Broadleaf, repetitions);
    let mut out = String::from(
        "Table III: time (microseconds) executing Broadleaf unit tests per engine mode\n",
    );
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                r.api.clone(),
                r.original.as_micros().to_string(),
                r.interpretive.as_micros().to_string(),
                r.concolic.as_micros().to_string(),
                format!("{:.1}x", r.interpretive_factor()),
                format!("{:.1}x", r.concolic_factor()),
            ]
        })
        .collect();
    out.push_str(&table(
        &[
            "API",
            "Original",
            "Interpretive",
            "Interp+Concolic",
            "interp/orig",
            "conc/orig",
        ],
        &rows,
    ));
    out.push_str(
        "\npaper (ms, JVM-scale): Original 9–822, Interpretive ~5–10x, Concolic ~4–6x on top;\n\
         shape check: Concolic > Interpretive > Original for the suite totals.\n",
    );
    out
}

/// Sec. IV pruning: path conditions with vs without library modeling.
pub fn pruning() -> String {
    let rows_data = measure_pruning(&Broadleaf);
    let mut out = String::from(
        "Path-condition pruning (Sec. IV): library modeling on Broadleaf unit tests\n",
    );
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                r.api.clone(),
                r.naive.to_string(),
                r.modeled.to_string(),
                format!("{:.0}x", r.reduction()),
            ]
        })
        .collect();
    out.push_str(&table(
        &["API", "naive (unmodeled)", "modeled", "reduction"],
        &rows,
    ));
    out.push_str(
        "\npaper: Broadleaf Ship drops 656K -> 2.7K (~243x) once drivers, built-ins and\n\
         containers are modeled; the simulated app shows the same order-of-magnitude cut.\n",
    );
    out
}

/// Figs. 10/11: throughput per client count per fix configuration.
pub fn figure(app_name: &str, quick: bool) -> String {
    let config = if quick {
        PerfConfig {
            client_counts: vec![8, 32],
            duration: Duration::from_millis(700),
            hot_products: 8,
            statement_delay: Duration::ZERO,
        }
    } else {
        PerfConfig::default()
    };
    let points = match app_name {
        "broadleaf" => run_perf_sweep(Broadleaf, &Fix::BROADLEAF, &config),
        "shopizer" => run_perf_sweep(Shopizer, &Fix::SHOPIZER, &config),
        other => panic!("unknown app {other}"),
    };
    let fig = if app_name == "broadleaf" {
        "Fig. 10"
    } else {
        "Fig. 11"
    };
    let mut out =
        format!("{fig}: {app_name} throughput (API/s) by client count and fix configuration\n");
    let max = points
        .iter()
        .map(|p| p.result.throughput)
        .fold(0.0_f64, f64::max);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.label.clone(),
                p.clients.to_string(),
                format!("{:.0}", p.result.throughput),
                format!("{:.0}", p.result.aborts_per_sec),
                bar(p.result.throughput, max, 30),
            ]
        })
        .collect();
    out.push_str(&table(
        &["config", "clients", "API/s", "aborts/s", ""],
        &rows,
    ));
    // Headline factor, like the paper's 39.5x / 4.5x.
    let best_clients = *config.client_counts.last().unwrap();
    let tput = |label: &str| {
        points
            .iter()
            .find(|p| p.label == label && p.clients == best_clients)
            .map(|p| p.result.throughput)
            .unwrap_or(0.0)
    };
    let enabled = tput("enable all");
    let disabled = tput("disable all");
    let _ = writeln!(
        out,
        "\nenable-all vs disable-all at {best_clients} clients: {:.1}x improvement \
         (paper: 39.5x Broadleaf / 4.5x Shopizer at 128 clients)",
        enabled / disabled.max(1e-9),
    );
    out
}

/// Observability export: run the full diagnosis pipeline on both apps
/// with the [`weseer_obs`] registry enabled and return
/// `(human_report, json_lines)` — the funnel/timing tables for stdout and
/// the per-app JSON-lines export for `--metrics-out`.
pub fn metrics_report() -> (String, String) {
    weseer_obs::set_enabled(true);
    let weseer = Weseer::new();
    let mut human = String::new();
    let mut json = String::new();
    for analysis in [weseer.analyze(&Broadleaf), weseer.analyze(&Shopizer)] {
        human.push_str(&weseer_obs::report::render_report(
            &analysis.metrics,
            &format!("{} diagnosis metrics", analysis.app),
            FUNNEL_STAGES,
        ));
        // Discharge points of the tiered fast path (Sec. "Tiered
        // solving" in the README): where each solver query was decided.
        let c = |name: &str| analysis.metrics.counter(name);
        let _ = writeln!(
            human,
            "SMT fast path: {} tier-0 discharged, {} tier-1 discharged \
             ({} sat / {} unsat), {} prefix kills, {} fell through \
             ({} full solves)",
            c("smt.fastpath.t0_simplified"),
            c("smt.fastpath.t1_sat") + c("smt.fastpath.t1_unsat"),
            c("smt.fastpath.t1_sat"),
            c("smt.fastpath.t1_unsat"),
            c("smt.fastpath.prefix_kill"),
            c("smt.fastpath.fallthrough"),
            c("smt.full_solve"),
        );
        // The verdict cache sits outside the funnel (hit/miss counts are
        // scheduling-dependent): report its hit rate separately.
        let hits = analysis.metrics.counter("smt.cache_hit");
        let misses = analysis.metrics.counter("smt.cache_miss");
        if hits + misses > 0 {
            let _ = writeln!(
                human,
                "SMT verdict cache: {hits} hits / {misses} misses ({:.1}% hit rate), \
                 pairs pruned by phase 1: {}",
                100.0 * hits as f64 / (hits + misses) as f64,
                analysis.metrics.counter("analyzer.pairs_pruned"),
            );
        }
        human.push('\n');
        json.push_str(&analysis.metrics.to_json_lines(Some(&analysis.app)));
    }
    (human, json)
}

/// Witness replay over both applications: every diagnosed cycle is
/// replayed for a concrete deadlocking schedule ([`weseer_replay`]).
/// Returns `(human report, witness JSON lines)`; the JSON side carries one
/// line per report and is byte-for-byte deterministic across runs and
/// thread counts (CI diffs it).
pub fn witness_report() -> (String, String) {
    let weseer = Weseer::new().with_replay();
    let mut human = String::new();
    let mut json = String::new();
    for analysis in [weseer.analyze(&Broadleaf), weseer.analyze(&Shopizer)] {
        let summary = analysis
            .replay
            .as_ref()
            .expect("with_replay() populates the summary");
        let stats = &analysis.diagnosis.stats;
        let (explored, pruned) = summary.schedule_totals();
        let _ = writeln!(human, "== {} witness replay ==", analysis.app);
        let _ = writeln!(
            human,
            "funnel: {} txn pairs -> {} after phase 1 -> {} coarse cycles -> \
             {} fine candidates -> {} SAT -> {} replay-confirmed \
             ({} not reproduced, {} skipped)",
            stats.txn_pairs,
            stats.pairs_after_phase1,
            stats.coarse_cycles,
            stats.fine_candidates,
            stats.smt_sat,
            summary.confirmed(),
            summary.not_reproduced(),
            summary.skipped(),
        );
        let _ = writeln!(
            human,
            "schedules: {explored} explored, {pruned} pruned by sleep sets"
        );
        let mut first_witness = true;
        for (report, verdict) in analysis.diagnosis.deadlocks.iter().zip(&summary.verdicts) {
            let _ = writeln!(
                human,
                "  {} <-> {}: {}",
                report.cycle.a_api,
                report.cycle.b_api,
                verdict.tag()
            );
            let witness_json = match verdict.witness() {
                Some(w) => {
                    if first_witness {
                        // Show one full schedule per app in the human report.
                        human.push_str(&indent(&w.render(), "    "));
                        first_witness = false;
                    }
                    w.to_json()
                }
                None => "null".to_string(),
            };
            let _ = writeln!(
                json,
                "{{\"app\":\"{}\",\"a_api\":\"{}\",\"b_api\":\"{}\",\"verdict\":\"{}\",\"witness\":{}}}",
                analysis.app,
                report.cycle.a_api,
                report.cycle.b_api,
                verdict.tag(),
                witness_json
            );
        }
        human.push('\n');
    }
    (human, json)
}

/// Result of the tiered-solving ablation.
pub struct Ablation {
    /// Human-readable per-app speedup tables.
    pub report: String,
    /// One JSON line summarizing the run (for `BENCH_smt.json`).
    pub bench_json: String,
    /// True if any tier configuration changed a verdict or a report —
    /// the tiers must be pure optimizations, so this fails CI.
    pub diverged: bool,
}

/// `--smt-ablation`: diagnose each app once per tier configuration
/// (all tiers, each tier individually disabled, all off) on the same
/// traces, assert the verdicts and rendered reports are identical across
/// configurations, and render the full-solver/wall-time reduction table.
pub fn smt_ablation(apps: &[&str]) -> Ablation {
    use weseer_analyzer::diagnose;
    use weseer_apps::Fixes;
    use weseer_smt::TierConfig;

    struct Row {
        label: &'static str,
        full_solve: u64,
        t0: u64,
        t1: u64,
        prefix_kill: u64,
        cache_hit: u64,
        cache_miss: u64,
        solve_wall_us: u64,
        verdicts: (usize, usize, usize),
        reports: Vec<String>,
    }

    let configs: [(&'static str, TierConfig); 5] = [
        ("all tiers", TierConfig::default()),
        (
            "no simplify",
            TierConfig {
                simplify: false,
                ..TierConfig::default()
            },
        ),
        (
            "no presolve",
            TierConfig {
                presolve: false,
                ..TierConfig::default()
            },
        ),
        (
            "no prefix",
            TierConfig {
                prefix: false,
                ..TierConfig::default()
            },
        ),
        ("no tiers", TierConfig::OFF),
    ];

    weseer_obs::set_enabled(true);
    let weseer = Weseer::new();
    let mut report = String::from("Tiered SMT fast-path ablation\n");
    let mut diverged = false;
    let mut json_apps = Vec::new();

    for &app_name in apps {
        let app: &dyn ECommerceApp = match app_name {
            "broadleaf" => &Broadleaf,
            "shopizer" => &Shopizer,
            other => panic!("unknown app {other}"),
        };
        let (traces, _db) = weseer.collect_traces(app, &Fixes::none());
        let catalog = app.catalog();

        let rows: Vec<Row> = configs
            .iter()
            .map(|(label, tiers)| {
                let mut config = weseer.config.clone();
                config.solver.tiers = *tiers;
                let before = weseer_obs::snapshot();
                let diagnosis = diagnose(&catalog, &traces, &config);
                let m = weseer_obs::snapshot().delta_since(&before);
                Row {
                    label,
                    full_solve: m.counter("smt.full_solve"),
                    t0: m.counter("smt.fastpath.t0_simplified"),
                    t1: m.counter("smt.fastpath.t1_sat") + m.counter("smt.fastpath.t1_unsat"),
                    prefix_kill: m.counter("smt.fastpath.prefix_kill"),
                    cache_hit: m.counter("smt.cache_hit"),
                    cache_miss: m.counter("smt.cache_miss"),
                    solve_wall_us: m.histogram("smt.solve_us").map(|h| h.sum).unwrap_or(0),
                    verdicts: (
                        diagnosis.stats.smt_sat,
                        diagnosis.stats.smt_unsat,
                        diagnosis.stats.smt_unknown,
                    ),
                    // Cycle identities only: a tier-1 SAT witness model may
                    // legitimately differ from the full solver's, but which
                    // deadlocks are reported (and their order) must not.
                    reports: diagnosis
                        .deadlocks
                        .iter()
                        .map(|r| format!("{:?}", r.cycle))
                        .collect(),
                }
            })
            .collect();

        // The "no tiers" row is the reference semantics: every other
        // configuration must reproduce its verdicts and reports exactly.
        let baseline = rows.last().unwrap();
        for row in &rows {
            if row.verdicts != baseline.verdicts || row.reports != baseline.reports {
                diverged = true;
                let _ = writeln!(
                    report,
                    "DIVERGENCE on {app_name}: '{}' produced verdicts {:?} vs baseline {:?}",
                    row.label, row.verdicts, baseline.verdicts
                );
            }
        }

        let tiered = &rows[0];
        let table_rows: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.label.to_string(),
                    r.full_solve.to_string(),
                    r.t0.to_string(),
                    r.t1.to_string(),
                    r.prefix_kill.to_string(),
                    format!("{}/{}", r.cache_hit, r.cache_miss),
                    format!("{:.1}", r.solve_wall_us as f64 / 1000.0),
                    format!("{:?}", r.verdicts),
                ]
            })
            .collect();
        let _ = writeln!(report, "\n== {app_name} ==");
        report.push_str(&table(
            &[
                "config",
                "full solves",
                "t0 discharged",
                "t1 discharged",
                "prefix kills",
                "cache hit/miss",
                "solver wall (ms)",
                "(sat, unsat, unknown)",
            ],
            &table_rows,
        ));
        let _ = writeln!(
            report,
            "full-solver reduction (no tiers -> all tiers): {} -> {} ({:.2}x)",
            baseline.full_solve,
            tiered.full_solve,
            baseline.full_solve as f64 / tiered.full_solve.max(1) as f64,
        );

        let hit_rate = if tiered.cache_hit + tiered.cache_miss > 0 {
            tiered.cache_hit as f64 / (tiered.cache_hit + tiered.cache_miss) as f64
        } else {
            0.0
        };
        json_apps.push(format!(
            "\"{app_name}\":{{\"full_solve_baseline\":{},\"full_solve_tiered\":{},\
             \"t0_discharged\":{},\"t1_discharged\":{},\"prefix_kills\":{},\
             \"cache_hit_rate\":{:.3},\"solver_wall_us_baseline\":{},\"solver_wall_us_tiered\":{}}}",
            baseline.full_solve,
            tiered.full_solve,
            tiered.t0,
            tiered.t1,
            tiered.prefix_kill,
            hit_rate,
            baseline.solve_wall_us,
            tiered.solve_wall_us,
        ));
    }

    let bench_json = format!(
        "{{\"bench\":\"smt_tiered_ablation\",\"diverged\":{},{}}}\n",
        diverged,
        json_apps.join(",")
    );
    Ablation {
        report,
        bench_json,
        diverged,
    }
}

fn indent(text: &str, pad: &str) -> String {
    let mut out = String::new();
    for line in text.lines() {
        let _ = writeln!(out, "{pad}{line}");
    }
    out
}

/// The aborts-per-second claim of Sec. VII-D (904 → 0 at 128 clients).
pub fn aborts_claim(quick: bool) -> String {
    let clients = if quick { 16 } else { 128 };
    let config = PerfConfig {
        client_counts: vec![clients],
        duration: if quick {
            Duration::from_millis(700)
        } else {
            Duration::from_secs(2)
        },
        hot_products: 8,
        statement_delay: Duration::ZERO,
    };
    let points = run_perf_sweep(Broadleaf, &[], &config);
    let enabled = &points[0];
    let disabled = &points[1];
    format!(
        "Sec. VII-D aborts/second, Broadleaf @ {clients} clients:\n\
         disable all: {:.0} aborts/s   enable all: {:.0} aborts/s\n\
         (paper: 904 -> 0 at 128 clients)\n",
        disabled.result.aborts_per_sec, enabled.result.aborts_per_sec
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_static_content() {
        let t = table1();
        assert!(t.contains("Register"));
        assert!(t.contains("Checkout"));
        assert!(t.contains("Payment"));
    }
}

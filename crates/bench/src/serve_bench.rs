//! `--serve-bench`: the serving-plane benchmark behind
//! `BENCH_serve.json`.
//!
//! Replays the Broadleaf and Shopizer trace sets through an in-process
//! [`weseer_serve::Daemon`] and measures three things:
//!
//! 1. **Identity** — the streamed verdict lines must be byte-identical
//!    to the batch pipeline's reports, cold and warm, at every shard
//!    count. Any divergence fails the bench (and CI).
//! 2. **Shard scaling** — traces/sec and client-observed verdict
//!    latency (p50/p99, submission → receipt) at 1, 2, and 4 analysis
//!    shards. The gate is deliberately lenient — 4 shards must reach at
//!    least 0.4× the 1-shard throughput — because CI runners are often
//!    single-core, where sharding can only add overhead; the gate
//!    catches pathological regressions (a deadlocked queue, quadratic
//!    routing), not missing speedups.
//! 3. **Warm sharing** — a second daemon session against the same store
//!    file must hit verdicts the first session persisted (hit rate > 0),
//!    proving the store warms across daemon restarts, not just within
//!    one process.

use std::fmt::Write as _;
use std::time::{Duration, Instant};
use weseer_apps::{Broadleaf, ECommerceApp, Fixes, Shopizer};
use weseer_core::Weseer;
use weseer_serve::{verdict_line, Daemon, DaemonConfig, ServeEvent};

use crate::render::table;

/// Result of the serving benchmark.
pub struct ServeBench {
    /// Human-readable identity/scaling/warm report.
    pub report: String,
    /// The `BENCH_serve.json` body.
    pub bench_json: String,
    /// True if streaming diverged from batch anywhere, the warm session
    /// hit nothing, or the 4-shard throughput fell below the lenient
    /// scaling floor — all of which fail CI.
    pub failed: bool,
}

fn app_of(name: &str) -> &'static dyn ECommerceApp {
    match name {
        "broadleaf" => &Broadleaf,
        "shopizer" => &Shopizer,
        other => panic!("unknown app {other}"),
    }
}

/// The batch pipeline's verdicts for `app`, rendered with the daemon's
/// own wire format so equality is a plain byte comparison.
fn batch_lines(name: &str) -> String {
    let analysis = Weseer::new().analyze(app_of(name));
    analysis
        .diagnosis
        .deadlocks
        .iter()
        .map(|r| verdict_line(name, r))
        .collect()
}

struct Streamed {
    lines: String,
    traces: usize,
    /// Submission close → `Done` event (analysis wall, excluding trace
    /// collection).
    wall: Duration,
    /// Submission close → each verdict's receipt, in micros.
    latencies_us: Vec<u64>,
}

/// Stream one app's trace set through `daemon` from this thread,
/// recording client-observed verdict latencies.
fn stream_once(daemon: &Daemon, name: &str) -> Streamed {
    let (traces, _db) = Weseer::new().collect_traces(app_of(name), &Fixes::none());
    let n = traces.len();
    let client = daemon.client(name);
    for t in traces {
        client.send(t);
    }
    let rx = client.finish();
    let submitted = Instant::now();
    let mut lines = String::new();
    let mut latencies_us = Vec::new();
    let mut wall = Duration::ZERO;
    for event in rx {
        match event {
            ServeEvent::Verdict(line) => {
                latencies_us.push(submitted.elapsed().as_micros() as u64);
                lines.push_str(&line);
            }
            ServeEvent::Done(_) => {
                wall = submitted.elapsed();
                break;
            }
        }
    }
    Streamed {
        lines,
        traces: n,
        wall,
        latencies_us,
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Run the full serving benchmark. `quick` trims the client sweep for
/// CI-scale runs; the identity and shard-scaling gates always run in
/// full.
pub fn serve_bench(quick: bool) -> ServeBench {
    weseer_obs::set_enabled(true);
    let apps = ["broadleaf", "shopizer"];
    let mut report = String::from("Serving plane: streaming identity, shard scaling, warm store\n");
    let mut failed = false;

    // Batch baselines (rendered in the wire format).
    let batch: Vec<(String, String)> = apps
        .iter()
        .map(|&a| (a.to_string(), batch_lines(a)))
        .collect();

    // Phase A: two daemon sessions sharing one store file. The first
    // fills it; the second must both match batch byte-for-byte and hit
    // the first session's verdicts.
    let store_path =
        std::env::temp_dir().join(format!("weseer-serve-bench-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&store_path);
    let mut identity_rows = Vec::new();
    let mut identity_json = Vec::new();
    let mut warm_hit = 0u64;
    let mut warm_miss = 0u64;
    for (label, warm) in [("cold", false), ("warm", true)] {
        let daemon = Daemon::start(DaemonConfig {
            store_path: Some(store_path.clone()),
            ..DaemonConfig::default()
        })
        .expect("start bench daemon");
        let before = weseer_obs::snapshot();
        for (name, batch_out) in &batch {
            let streamed = stream_once(&daemon, name);
            let matched = streamed.lines == *batch_out;
            if !matched {
                failed = true;
                let _ = writeln!(
                    report,
                    "DIVERGENCE on {name}: {label} streamed verdicts differ from batch"
                );
            }
            identity_rows.push(vec![
                name.to_string(),
                label.to_string(),
                streamed.traces.to_string(),
                streamed.lines.lines().count().to_string(),
                if matched { "yes".into() } else { "NO".into() },
            ]);
            if warm {
                identity_json.push(format!(
                    "\"{name}\":{{\"verdicts\":{},\"cold_match\":{},\"warm_match\":{matched}}}",
                    streamed.lines.lines().count(),
                    // cold rows were pushed first, two rows per app
                    identity_rows
                        .iter()
                        .any(|r| r[0] == *name && r[1] == "cold" && r[4] == "yes"),
                ));
            }
        }
        let delta = weseer_obs::snapshot().delta_since(&before);
        if warm {
            warm_hit = delta.counter("store.hit");
            warm_miss = delta.counter("store.miss");
        }
        daemon.shutdown();
    }
    let _ = std::fs::remove_file(&store_path);
    let warm_hit_rate = warm_hit as f64 / (warm_hit + warm_miss).max(1) as f64;
    if warm_hit == 0 {
        failed = true;
        let _ = writeln!(
            report,
            "NOT WARM: the second daemon session hit nothing from the first"
        );
    }
    report.push_str(&table(
        &["app", "session", "traces", "verdicts", "matches batch"],
        &identity_rows,
    ));
    let _ = writeln!(
        report,
        "warm session store: {warm_hit} hits / {warm_miss} misses ({:.0}% hit rate)\n",
        warm_hit_rate * 100.0
    );

    // Phase B: shard-scaling curve, cold (no store — the shards must do
    // real solving for throughput to mean anything).
    let mut shard_rows = Vec::new();
    let mut shard_json = Vec::new();
    let mut shard_tput = Vec::new();
    for shards in [1usize, 2, 4] {
        let daemon = Daemon::start(DaemonConfig {
            shards,
            ..DaemonConfig::default()
        })
        .expect("start bench daemon");
        let mut traces = 0usize;
        let mut wall = Duration::ZERO;
        let mut latencies = Vec::new();
        let mut matched = true;
        for (name, batch_out) in &batch {
            let streamed = stream_once(&daemon, name);
            matched &= streamed.lines == *batch_out;
            traces += streamed.traces;
            wall += streamed.wall;
            latencies.extend(streamed.latencies_us);
        }
        daemon.shutdown();
        if !matched {
            failed = true;
            let _ = writeln!(
                report,
                "DIVERGENCE: {shards}-shard streamed verdicts differ from batch"
            );
        }
        latencies.sort_unstable();
        let tput = traces as f64 / wall.as_secs_f64().max(1e-9);
        let p50 = percentile(&latencies, 0.50);
        let p99 = percentile(&latencies, 0.99);
        shard_tput.push(tput);
        shard_rows.push(vec![
            shards.to_string(),
            format!("{tput:.1}"),
            format!("{:.1}", p50 as f64 / 1000.0),
            format!("{:.1}", p99 as f64 / 1000.0),
            if matched { "yes".into() } else { "NO".into() },
        ]);
        shard_json.push(format!(
            "{{\"shards\":{shards},\"traces_per_sec\":{tput:.1},\
             \"verdict_p50_us\":{p50},\"verdict_p99_us\":{p99},\"match\":{matched}}}"
        ));
    }
    // Lenient on purpose: single-core CI cannot show a speedup, but a
    // 4-shard collapse below 0.4x of 1-shard means the scheduler itself
    // regressed (stalled queues, routing overhead gone quadratic).
    if shard_tput[2] < 0.4 * shard_tput[0] {
        failed = true;
        let _ = writeln!(
            report,
            "SCALING REGRESSION: 4-shard throughput {:.1} < 0.4x of 1-shard {:.1}",
            shard_tput[2], shard_tput[0]
        );
    }
    report.push_str("Shard scaling (cold, both apps):\n");
    report.push_str(&table(
        &[
            "shards",
            "traces/sec",
            "p50 (ms)",
            "p99 (ms)",
            "matches batch",
        ],
        &shard_rows,
    ));

    // Phase C: concurrent-client curve against one daemon. Clients
    // alternate apps; throughput is aggregate traces over the round's
    // wall clock (ingest backpressure and worker contention included).
    let client_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4] };
    let mut client_rows = Vec::new();
    let mut client_json = Vec::new();
    for &clients in client_counts {
        let daemon = Daemon::start(DaemonConfig {
            workers: clients,
            ..DaemonConfig::default()
        })
        .expect("start bench daemon");
        let start = Instant::now();
        let (traces, matched) = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let daemon = &daemon;
                    let batch = &batch;
                    scope.spawn(move || {
                        let (name, batch_out) = &batch[c % batch.len()];
                        let streamed = stream_once(daemon, name);
                        (streamed.traces, streamed.lines == *batch_out)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("bench client panicked"))
                .fold((0usize, true), |(t, m), (tc, mc)| (t + tc, m && mc))
        });
        let wall = start.elapsed();
        daemon.shutdown();
        if !matched {
            failed = true;
            let _ = writeln!(
                report,
                "DIVERGENCE: {clients}-client streamed verdicts differ from batch"
            );
        }
        let tput = traces as f64 / wall.as_secs_f64().max(1e-9);
        client_rows.push(vec![
            clients.to_string(),
            traces.to_string(),
            format!("{tput:.1}"),
            if matched { "yes".into() } else { "NO".into() },
        ]);
        client_json.push(format!(
            "{{\"clients\":{clients},\"traces\":{traces},\"traces_per_sec\":{tput:.1},\
             \"match\":{matched}}}"
        ));
    }
    report.push_str("Concurrent clients (one daemon, workers = clients):\n");
    report.push_str(&table(
        &["clients", "traces", "traces/sec", "matches batch"],
        &client_rows,
    ));

    let bench_json = format!(
        "{{\"bench\":\"serve\",\"failed\":{failed},\
         \"identity\":{{{}}},\
         \"warm\":{{\"hit\":{warm_hit},\"miss\":{warm_miss},\"hit_rate\":{warm_hit_rate:.3}}},\
         \"shard_curve\":[{}],\
         \"client_curve\":[{}]}}\n",
        identity_json.join(","),
        shard_json.join(","),
        client_json.join(",")
    );
    ServeBench {
        report,
        bench_json,
        failed,
    }
}

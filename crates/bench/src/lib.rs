//! # weseer-bench
//!
//! The evaluation-reproduction harness: one driver per table/figure of the
//! paper (Tables I–III, Figs. 10/11, the Sec. IV pruning measurement, and
//! the Sec. VII-B coarse-baseline comparison), plus Criterion
//! micro-benchmarks over the solver, the storage engine, and the
//! diagnosis pipeline.
//!
//! Run `cargo run -p weseer-bench --bin reproduce --release -- all` to
//! regenerate every artifact.

pub mod experiments;
pub mod render;
pub mod serve_bench;

//! Regenerate the paper's evaluation artifacts.
//!
//! ```text
//! reproduce [--quick] [table1] [table2] [table3] [fig10] [fig11]
//!           [pruning] [baseline] [aborts] [all]
//! ```
//!
//! With no selector (or `all`), every experiment runs. `--quick` shrinks
//! the performance sweeps for CI-scale runs.

use weseer_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let selected: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let all = selected.is_empty() || selected.contains(&"all");
    let want = |name: &str| all || selected.contains(&name);

    if want("table1") {
        println!("{}", experiments::table1());
    }
    if want("table2") {
        println!("{}", experiments::table2());
    }
    if want("baseline") {
        println!("{}", experiments::baseline());
    }
    if want("table3") {
        println!("{}", experiments::table3(if quick { 2 } else { 5 }));
    }
    if want("pruning") {
        println!("{}", experiments::pruning());
    }
    if want("fig10") {
        println!("{}", experiments::figure("broadleaf", quick));
    }
    if want("fig11") {
        println!("{}", experiments::figure("shopizer", quick));
    }
    if want("aborts") {
        println!("{}", experiments::aborts_claim(quick));
    }
}

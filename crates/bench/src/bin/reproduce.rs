//! Regenerate the paper's evaluation artifacts.
//!
//! ```text
//! reproduce [--quick] [--threads <n>] [--metrics-out <path>]
//!           [--witness-out <path>] [table1] [table2] [table3] [fig10]
//!           [fig11] [pruning] [baseline] [aborts] [all]
//! ```
//!
//! With no selector (or `all`), every experiment runs. `--quick` shrinks
//! the performance sweeps for CI-scale runs. `--threads <n>` pins the
//! analyzer's worker count (equivalent to setting `WESEER_THREADS=<n>`;
//! the diagnosis output is identical for every value — see the CI
//! determinism job). `--metrics-out <path>` runs the diagnosis pipeline on
//! both apps with the observability registry enabled, prints the
//! funnel/timing report, and writes the JSON-lines metrics export to
//! `<path>`. `--witness-out <path>` replays every diagnosed cycle for a
//! concrete deadlock witness, prints the confirmed/not-reproduced funnel,
//! and writes one JSON line per report to `<path>` (byte-for-byte
//! deterministic across runs and thread counts; CI diffs it). With no
//! other selector, only the requested export runs happen.

use weseer_bench::experiments;

fn main() {
    let mut metrics_out: Option<String> = None;
    let mut witness_out: Option<String> = None;
    let mut rest: Vec<String> = Vec::new();
    let mut raw = std::env::args().skip(1);
    while let Some(arg) = raw.next() {
        if arg == "--metrics-out" {
            let path = raw.next().unwrap_or_else(|| {
                eprintln!("--metrics-out requires a path argument");
                std::process::exit(2);
            });
            metrics_out = Some(path);
        } else if arg == "--witness-out" {
            let path = raw.next().unwrap_or_else(|| {
                eprintln!("--witness-out requires a path argument");
                std::process::exit(2);
            });
            witness_out = Some(path);
        } else if arg == "--threads" {
            let n = raw
                .next()
                .and_then(|v| v.parse::<usize>().ok().filter(|&n| n > 0))
                .unwrap_or_else(|| {
                    eprintln!("--threads requires a positive integer argument");
                    std::process::exit(2);
                });
            // The experiments build their own `Weseer` facades with the
            // default (auto) thread setting, which consults this variable.
            std::env::set_var("WESEER_THREADS", n.to_string());
        } else {
            rest.push(arg);
        }
    }
    let quick = rest.iter().any(|a| a == "--quick");
    let selected: Vec<&str> = rest
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let all = (selected.is_empty() && metrics_out.is_none() && witness_out.is_none())
        || selected.contains(&"all");
    let want = |name: &str| all || selected.contains(&name);

    if want("table1") {
        println!("{}", experiments::table1());
    }
    if want("table2") {
        println!("{}", experiments::table2());
    }
    if want("baseline") {
        println!("{}", experiments::baseline());
    }
    if want("table3") {
        println!("{}", experiments::table3(if quick { 2 } else { 5 }));
    }
    if want("pruning") {
        println!("{}", experiments::pruning());
    }
    if want("fig10") {
        println!("{}", experiments::figure("broadleaf", quick));
    }
    if want("fig11") {
        println!("{}", experiments::figure("shopizer", quick));
    }
    if want("aborts") {
        println!("{}", experiments::aborts_claim(quick));
    }
    if let Some(path) = metrics_out {
        let (human, json) = experiments::metrics_report();
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("failed to write metrics to {path}: {e}");
            std::process::exit(1);
        }
        println!("{human}");
        println!("metrics written to {path}");
    }
    if let Some(path) = witness_out {
        let (human, json) = experiments::witness_report();
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("failed to write witnesses to {path}: {e}");
            std::process::exit(1);
        }
        println!("{human}");
        println!("witnesses written to {path}");
    }
}

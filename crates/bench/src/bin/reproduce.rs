//! Regenerate the paper's evaluation artifacts.
//!
//! ```text
//! reproduce [--quick] [--threads <n>] [--metrics-out <path>]
//!           [--witness-out <path>] [--smt-ablation [app]]
//!           [--store <path>] [--dirty <api>] [--incremental-bench [app]]
//!           [--trace-out <path>] [--serve <addr>] [--serve-hold <secs>]
//!           [--daemon <addr>] [--serve-bench] [--verdicts-out <path>]
//!           [--timeline-bench [app]]
//!           [--isolation <level>] [--anomaly-out <path>] [--mvcc-bench]
//!           [--help]
//!           [table1] [table2] [table3] [fig10] [fig11] [pruning]
//!           [baseline] [aborts] [all]
//! ```
//!
//! With no selector (or `all`), every experiment runs. `--quick` shrinks
//! the performance sweeps for CI-scale runs. `--threads <n>` pins the
//! analyzer's worker count (equivalent to setting `WESEER_THREADS=<n>`;
//! `--threads 0` — or `WESEER_THREADS=0` — auto-detects via
//! `std::thread::available_parallelism`, the same as not passing the
//! flag at all; the diagnosis output is identical for every value — see
//! the CI determinism job). `--metrics-out <path>` runs the diagnosis pipeline on
//! both apps with the observability registry enabled, prints the
//! funnel/timing report, and writes the JSON-lines metrics export to
//! `<path>`. `--witness-out <path>` replays every diagnosed cycle for a
//! concrete deadlock witness, prints the confirmed/not-reproduced funnel,
//! and writes one JSON line per report to `<path>` (byte-for-byte
//! deterministic across runs and thread counts; CI diffs it).
//! `--smt-ablation [broadleaf|shopizer]` diagnoses the app(s) once per
//! named solver configuration (`all_tiers`, `no_simplify`,
//! `no_presolve`, `no_prefix`, `no_cdcl` — legacy DPLL core —
//! `no_incremental` — fresh solver per formula — and `no_tiers`; the
//! grid is `TierConfig::ablation_configs`), prints the full-solver
//! reduction table, writes a one-line summary with a
//! `wallclock_per_solve` row per configuration to `BENCH_smt.json`, and
//! exits nonzero if any configuration changed a verdict or report (the
//! tiers must be pure optimizations). With no app argument both apps
//! run. With no other selector, only the requested export/ablation runs
//! happen.
//!
//! `--store <path>` opens (or creates) the incremental store at `<path>`
//! and runs every selected experiment against it (equivalent to
//! `WESEER_STORE=<path>`): the first run fills it, later runs warm-start
//! from it and are byte-identical. `--dirty <api>` treats `<api>`'s trace
//! as changed (`WESEER_DIRTY=<api>`), invalidating exactly the stored
//! outcomes that involve it. `--incremental-bench [broadleaf|shopizer]`
//! times a cold, a warm, and a one-trace-dirtied pipeline run per app
//! against a throwaway store, writes `BENCH_incremental.json`, and exits
//! nonzero if the warm/dirtied outputs diverge from the cold run or the
//! warm run did any full solving or schedule exploration.
//!
//! Observability plane: `--trace-out <path>` records the run on the
//! [`weseer_obs::timeline`] (every span, SMT solve, lock event, replay
//! step, and store lookup, with per-worker-thread lanes) and writes it as
//! Chrome trace-event JSON — load it at `chrome://tracing` or
//! <https://ui.perfetto.dev>. `--serve <addr>` (or `WESEER_SERVE=<addr>`;
//! use `127.0.0.1:0` for an ephemeral port) enables the registry and
//! serves `/metrics` (Prometheus text), `/funnel` (diagnosis-funnel
//! JSON), `/waitfor` + `/waitfor.dot` (live wait-for graph), and an HTML
//! dashboard at `/` while the experiments run; the bound address is
//! printed as `serving on http://<addr>`. `--serve-hold <secs>` keeps the
//! endpoint up that long after the experiments finish (for a human with a
//! browser). `--timeline-bench [broadleaf|shopizer]` times a
//! timeline-off and a timeline-on pipeline run per app, writes
//! `BENCH_timeline.json`, and exits nonzero if enabling the timeline
//! changed one output byte (it must be a pure observer).
//!
//! Serving plane: `--daemon <addr>` starts the full `weseer-serve`
//! daemon instead of the plain metrics endpoint — everything `--serve`
//! offers plus `GET /analyze/<app>` (stream an app's verdicts as
//! JSON lines) and `GET /shards` (per-shard queue depth, ingest lag,
//! verdicts/sec, shared-store hits); the bound address is printed as
//! `serving on http://<addr>` and held for `--serve-hold <secs>`
//! (default: forever). `WESEER_SERVE_SHARDS`, `WESEER_SERVE_WORKERS`,
//! and `WESEER_SERVE_STORE` tune the daemon. `--verdicts-out <path>`
//! runs the *batch* pipeline on both apps and writes their verdicts in
//! the daemon's wire format (broadleaf first, then shopizer) so CI can
//! byte-diff it against the daemon's streamed output. `--serve-bench`
//! replays both apps through an in-process daemon at increasing shard
//! and client counts, writes `BENCH_serve.json`, and exits nonzero if
//! streaming diverged from batch anywhere, the warm store session hit
//! nothing, or 4-shard throughput collapsed below the lenient scaling
//! floor (see `weseer_bench::serve_bench`).
//!
//! MVCC isolation plane: `--isolation <level>` selects the session
//! isolation level for every experiment (`serializable` — the default —
//! `snapshot`, `repeatable-read`, or `read-committed`; equivalent to
//! `WESEER_ISOLATION=<level>`, and rejected with the list of valid names
//! on a typo). At the default serializable level every output is
//! byte-identical to the pre-MVCC tool. `--anomaly-out <path>` runs the
//! diagnosis pipeline on both apps, prints the weak-isolation anomaly
//! screen (lost update / write skew / read fracture candidates from the
//! static oracle, confirmed or cleared by the interleaving explorer),
//! and writes one JSON line per app to `<path>` (`null` anomalies under
//! serializable). `--mvcc-bench` explores the planted lost-update and
//! write-skew workloads at all four levels, writes the verdict grid to
//! `BENCH_mvcc.json`, and exits nonzero unless the levels separate (the
//! anomalies show up at their weak levels and vanish at serializable).

use std::io::Write as _;
use weseer_bench::experiments;
use weseer_core::FUNNEL_STAGES;

const USAGE: &str = "\
reproduce: regenerate the paper's evaluation artifacts

USAGE:
    reproduce [OPTIONS] [SELECTORS]

SELECTORS (default: all):
    table1 table2 table3 fig10 fig11 pruning baseline aborts all

OPTIONS:
    --quick                  shrink the performance sweeps for CI-scale runs
    --threads N              pin the analyzer worker count (WESEER_THREADS=N);
                             0 = auto-detect via available_parallelism, the
                             same as omitting the flag. Output is identical
                             at every thread count.
    --metrics-out PATH       write the JSON-lines metrics export
    --witness-out PATH       write one replayed-witness JSON line per report
    --anomaly-out PATH       write the weak-isolation anomaly screen
    --verdicts-out PATH      write both apps' batch verdicts in the serving
                             wire format (for byte-diffing against the
                             daemon's GET /analyze/<app>)
    --store PATH             warm-start from an incremental store (WESEER_STORE)
    --dirty API              treat API's trace as changed (WESEER_DIRTY)
    --isolation LEVEL        serializable | snapshot | repeatable-read |
                             read-committed (WESEER_ISOLATION)
    --trace-out PATH         write a Chrome trace of the run
    --serve ADDR             serve /metrics /funnel /waitfor while running
    --daemon ADDR            start the full weseer-serve daemon instead:
                             adds GET /analyze/<app> and GET /shards; tuned
                             by WESEER_SERVE_SHARDS / WESEER_SERVE_WORKERS /
                             WESEER_SERVE_STORE; runs until killed
    --serve-hold SECS        keep the endpoint/daemon up after the runs
    --smt-ablation [APP]     solver-tier ablation grid -> BENCH_smt.json
    --incremental-bench [APP] cold/warm/dirtied timings -> BENCH_incremental.json
    --timeline-bench [APP]   timeline overhead -> BENCH_timeline.json
    --mvcc-bench             isolation-level separation -> BENCH_mvcc.json
    --serve-bench            streaming identity, shard scaling, warm store
                             -> BENCH_serve.json
    --help                   print this help
";

fn main() {
    let mut metrics_out: Option<String> = None;
    let mut witness_out: Option<String> = None;
    let mut anomaly_out: Option<String> = None;
    let mut mvcc_bench = false;
    let mut smt_ablation: Option<Vec<&'static str>> = None;
    let mut incremental: Option<Vec<&'static str>> = None;
    let mut timeline_bench: Option<Vec<&'static str>> = None;
    let mut trace_out: Option<String> = None;
    let mut serve: Option<String> = None;
    let mut serve_hold: Option<u64> = None;
    let mut daemon_addr: Option<String> = None;
    let mut serve_bench = false;
    let mut verdicts_out: Option<String> = None;
    let mut rest: Vec<String> = Vec::new();
    let mut raw = std::env::args().skip(1).peekable();
    while let Some(arg) = raw.next() {
        if arg == "--smt-ablation" {
            // Optional app argument; default to both apps.
            let apps = match raw.peek().map(|s| s.as_str()) {
                Some("broadleaf") => {
                    raw.next();
                    vec!["broadleaf"]
                }
                Some("shopizer") => {
                    raw.next();
                    vec!["shopizer"]
                }
                _ => vec!["broadleaf", "shopizer"],
            };
            smt_ablation = Some(apps);
        } else if arg == "--incremental-bench" {
            let apps = match raw.peek().map(|s| s.as_str()) {
                Some("broadleaf") => {
                    raw.next();
                    vec!["broadleaf"]
                }
                Some("shopizer") => {
                    raw.next();
                    vec!["shopizer"]
                }
                _ => vec!["broadleaf", "shopizer"],
            };
            incremental = Some(apps);
        } else if arg == "--timeline-bench" {
            let apps = match raw.peek().map(|s| s.as_str()) {
                Some("broadleaf") => {
                    raw.next();
                    vec!["broadleaf"]
                }
                Some("shopizer") => {
                    raw.next();
                    vec!["shopizer"]
                }
                _ => vec!["broadleaf", "shopizer"],
            };
            timeline_bench = Some(apps);
        } else if arg == "--trace-out" {
            let path = raw.next().unwrap_or_else(|| {
                eprintln!("--trace-out requires a path argument");
                std::process::exit(2);
            });
            trace_out = Some(path);
        } else if arg == "--serve" {
            let addr = raw.next().unwrap_or_else(|| {
                eprintln!("--serve requires an address argument (e.g. 127.0.0.1:0)");
                std::process::exit(2);
            });
            serve = Some(addr);
        } else if arg == "--serve-hold" {
            serve_hold = Some(
                raw.next()
                    .and_then(|v| v.parse::<u64>().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--serve-hold requires a number of seconds");
                        std::process::exit(2);
                    }),
            );
        } else if arg == "--daemon" {
            let addr = raw.next().unwrap_or_else(|| {
                eprintln!("--daemon requires an address argument (e.g. 127.0.0.1:0)");
                std::process::exit(2);
            });
            daemon_addr = Some(addr);
        } else if arg == "--serve-bench" {
            serve_bench = true;
        } else if arg == "--verdicts-out" {
            let path = raw.next().unwrap_or_else(|| {
                eprintln!("--verdicts-out requires a path argument");
                std::process::exit(2);
            });
            verdicts_out = Some(path);
        } else if arg == "--help" || arg == "-h" {
            // The module doc above is the authoritative manual; keep this
            // in sync with it.
            print!("{USAGE}");
            return;
        } else if arg == "--store" {
            let path = raw.next().unwrap_or_else(|| {
                eprintln!("--store requires a path argument");
                std::process::exit(2);
            });
            // The experiments build their own `Weseer` facades, which
            // consult this variable (see `Weseer::resolve_store`).
            std::env::set_var("WESEER_STORE", path);
        } else if arg == "--dirty" {
            let api = raw.next().unwrap_or_else(|| {
                eprintln!("--dirty requires an API name argument");
                std::process::exit(2);
            });
            std::env::set_var("WESEER_DIRTY", api);
        } else if arg == "--metrics-out" {
            let path = raw.next().unwrap_or_else(|| {
                eprintln!("--metrics-out requires a path argument");
                std::process::exit(2);
            });
            metrics_out = Some(path);
        } else if arg == "--witness-out" {
            let path = raw.next().unwrap_or_else(|| {
                eprintln!("--witness-out requires a path argument");
                std::process::exit(2);
            });
            witness_out = Some(path);
        } else if arg == "--anomaly-out" {
            let path = raw.next().unwrap_or_else(|| {
                eprintln!("--anomaly-out requires a path argument");
                std::process::exit(2);
            });
            anomaly_out = Some(path);
        } else if arg == "--mvcc-bench" {
            mvcc_bench = true;
        } else if arg == "--isolation" {
            let raw_level = raw.next().unwrap_or_else(|| {
                eprintln!("--isolation requires a level argument");
                std::process::exit(2);
            });
            // Validate up front for a clean error, then hand the level to
            // the experiments' `Weseer` facades through the env var
            // (mirrors `--threads` / `WESEER_THREADS`).
            let level = raw_level
                .parse::<weseer_db::IsolationLevel>()
                .unwrap_or_else(|e| {
                    eprintln!("--isolation: {e}");
                    std::process::exit(2);
                });
            std::env::set_var(weseer_db::ISOLATION_ENV, level.name());
        } else if arg == "--threads" {
            // 0 is valid and means auto-detect (available_parallelism),
            // matching `WESEER_THREADS=0` — see `resolve_threads`.
            let n = raw
                .next()
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or_else(|| {
                    eprintln!("--threads requires an integer argument (0 = auto-detect)");
                    std::process::exit(2);
                });
            // The experiments build their own `Weseer` facades with the
            // default (auto) thread setting, which consults this variable.
            std::env::set_var("WESEER_THREADS", n.to_string());
        } else {
            rest.push(arg);
        }
    }
    let quick = rest.iter().any(|a| a == "--quick");
    let selected: Vec<&str> = rest
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let all = (selected.is_empty()
        && metrics_out.is_none()
        && witness_out.is_none()
        && anomaly_out.is_none()
        && !mvcc_bench
        && smt_ablation.is_none()
        && incremental.is_none()
        && timeline_bench.is_none()
        && !serve_bench
        && verdicts_out.is_none()
        && daemon_addr.is_none())
        || selected.contains(&"all");
    let want = |name: &str| all || selected.contains(&name);

    // `WESEER_SERVE` is the env-var spelling of `--serve` (the flag wins).
    if serve.is_none() {
        if let Ok(addr) = std::env::var("WESEER_SERVE") {
            if !addr.is_empty() {
                serve = Some(addr);
            }
        }
    }
    // `--daemon` starts the full serving plane (ingest + sharded analysis
    // + `/analyze` + `/shards`); plain `--serve` binds the metrics-only
    // endpoint. Both print the same grep-able "serving on" line.
    let daemon = daemon_addr.map(|addr| {
        let env_num = |name: &str, default: usize| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        let defaults = weseer_serve::DaemonConfig::default();
        let config = weseer_serve::DaemonConfig {
            shards: env_num("WESEER_SERVE_SHARDS", defaults.shards),
            workers: env_num("WESEER_SERVE_WORKERS", defaults.workers),
            store_path: std::env::var("WESEER_SERVE_STORE")
                .ok()
                .filter(|p| !p.is_empty())
                .map(std::path::PathBuf::from),
            ..defaults
        };
        match weseer_serve::serve(&addr, config) {
            Ok((daemon, server)) => {
                println!("serving on http://{}", server.local_addr());
                let _ = std::io::stdout().flush();
                (daemon, server)
            }
            Err(e) => {
                eprintln!("failed to start daemon on {addr}: {e}");
                std::process::exit(1);
            }
        }
    });
    let server = if daemon.is_some() {
        None
    } else {
        serve.map(|addr| {
            // The endpoint reads the global registry; recording must be on
            // for `/metrics`, `/funnel`, and `/waitfor` to carry live data.
            weseer_obs::set_enabled(true);
            match weseer_obs::ObsServer::start(addr.as_str(), FUNNEL_STAGES) {
                Ok(server) => {
                    // CI greps this line for the bound (possibly ephemeral)
                    // port; flush so it is visible while the run is live.
                    println!("serving on http://{}", server.local_addr());
                    let _ = std::io::stdout().flush();
                    server
                }
                Err(e) => {
                    eprintln!("failed to bind {addr}: {e}");
                    std::process::exit(1);
                }
            }
        })
    };
    if trace_out.is_some() {
        weseer_obs::timeline::set_enabled(true);
        weseer_obs::timeline::set_lane_name("main");
    }

    if want("table1") {
        let _span = weseer_obs::span("reproduce.table1");
        println!("{}", experiments::table1());
    }
    if want("table2") {
        let _span = weseer_obs::span("reproduce.table2");
        println!("{}", experiments::table2());
    }
    if want("baseline") {
        let _span = weseer_obs::span("reproduce.baseline");
        println!("{}", experiments::baseline());
    }
    if want("table3") {
        let _span = weseer_obs::span("reproduce.table3");
        println!("{}", experiments::table3(if quick { 2 } else { 5 }));
    }
    if want("pruning") {
        let _span = weseer_obs::span("reproduce.pruning");
        println!("{}", experiments::pruning());
    }
    if want("fig10") {
        let _span = weseer_obs::span("reproduce.fig10");
        println!("{}", experiments::figure("broadleaf", quick));
    }
    if want("fig11") {
        let _span = weseer_obs::span("reproduce.fig11");
        println!("{}", experiments::figure("shopizer", quick));
    }
    if want("aborts") {
        let _span = weseer_obs::span("reproduce.aborts");
        println!("{}", experiments::aborts_claim(quick));
    }
    if let Some(path) = metrics_out {
        let _span = weseer_obs::span("reproduce.metrics_report");
        let (human, json) = experiments::metrics_report();
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("failed to write metrics to {path}: {e}");
            std::process::exit(1);
        }
        println!("{human}");
        println!("metrics written to {path}");
    }
    if let Some(path) = witness_out {
        let _span = weseer_obs::span("reproduce.witness_report");
        let (human, json) = experiments::witness_report();
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("failed to write witnesses to {path}: {e}");
            std::process::exit(1);
        }
        println!("{human}");
        println!("witnesses written to {path}");
    }
    if let Some(path) = verdicts_out {
        let _span = weseer_obs::span("reproduce.verdicts_out");
        let (human, lines) = experiments::batch_verdicts();
        if let Err(e) = std::fs::write(&path, lines) {
            eprintln!("failed to write verdicts to {path}: {e}");
            std::process::exit(1);
        }
        println!("{human}");
        println!("batch verdicts written to {path}");
    }
    if serve_bench {
        let _span = weseer_obs::span("reproduce.serve_bench");
        let bench = weseer_bench::serve_bench::serve_bench(quick);
        println!("{}", bench.report);
        if let Err(e) = std::fs::write("BENCH_serve.json", &bench.bench_json) {
            eprintln!("failed to write BENCH_serve.json: {e}");
            std::process::exit(1);
        }
        println!("bench summary written to BENCH_serve.json");
        if bench.failed {
            eprintln!(
                "serve-bench: streaming diverged from batch, the warm store \
                 session hit nothing, or shard throughput regressed"
            );
            std::process::exit(1);
        }
    }
    if let Some(path) = anomaly_out {
        let _span = weseer_obs::span("reproduce.anomaly_report");
        let (human, json) = experiments::anomaly_report();
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("failed to write anomaly report to {path}: {e}");
            std::process::exit(1);
        }
        println!("{human}");
        println!("anomaly report written to {path}");
    }
    if mvcc_bench {
        let _span = weseer_obs::span("reproduce.mvcc_bench");
        let bench = experiments::mvcc_bench();
        println!("{}", bench.report);
        if let Err(e) = std::fs::write("BENCH_mvcc.json", &bench.bench_json) {
            eprintln!("failed to write BENCH_mvcc.json: {e}");
            std::process::exit(1);
        }
        println!("bench summary written to BENCH_mvcc.json");
        if bench.failed {
            eprintln!(
                "mvcc-bench: the isolation levels failed to separate — \
                 planted anomalies must appear at weak levels and vanish at serializable"
            );
            std::process::exit(1);
        }
    }
    if let Some(apps) = smt_ablation {
        let _span = weseer_obs::span("reproduce.smt_ablation");
        let ablation = experiments::smt_ablation(&apps);
        println!("{}", ablation.report);
        if let Err(e) = std::fs::write("BENCH_smt.json", &ablation.bench_json) {
            eprintln!("failed to write BENCH_smt.json: {e}");
            std::process::exit(1);
        }
        println!("bench summary written to BENCH_smt.json");
        if ablation.diverged {
            eprintln!(
                "smt-ablation: tier configurations diverged — the tiers must not change verdicts"
            );
            std::process::exit(1);
        }
    }
    if let Some(apps) = incremental {
        let _span = weseer_obs::span("reproduce.incremental_bench");
        let bench = experiments::incremental_bench(&apps);
        println!("{}", bench.report);
        if let Err(e) = std::fs::write("BENCH_incremental.json", &bench.bench_json) {
            eprintln!("failed to write BENCH_incremental.json: {e}");
            std::process::exit(1);
        }
        println!("bench summary written to BENCH_incremental.json");
        if bench.diverged {
            eprintln!(
                "incremental-bench: warm/dirtied runs diverged from cold — \
                 the store must be a pure optimization"
            );
            std::process::exit(1);
        }
    }
    // Write the Chrome trace before the timeline bench runs: the bench
    // resets the timeline for its own measurements.
    if let Some(path) = trace_out {
        weseer_obs::timeline::set_enabled(false);
        let snap = weseer_obs::timeline::snapshot();
        let json = weseer_obs::chrome::to_chrome_trace(&snap);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("failed to write trace to {path}: {e}");
            std::process::exit(1);
        }
        println!(
            "chrome trace ({} records on {} lanes, {} dropped) written to {path}",
            snap.records.len(),
            snap.lanes.len(),
            snap.dropped
        );
    }
    if let Some(apps) = timeline_bench {
        let bench = experiments::timeline_bench(&apps);
        println!("{}", bench.report);
        if let Err(e) = std::fs::write("BENCH_timeline.json", &bench.bench_json) {
            eprintln!("failed to write BENCH_timeline.json: {e}");
            std::process::exit(1);
        }
        println!("bench summary written to BENCH_timeline.json");
        if bench.diverged {
            eprintln!(
                "timeline-bench: enabling the timeline changed the output — \
                 it must be a pure observer"
            );
            std::process::exit(1);
        }
    }
    if let Some((daemon, server)) = daemon {
        // Daemon mode serves until killed unless a hold was given.
        match serve_hold {
            Some(secs) => {
                println!("holding the daemon for {secs}s");
                let _ = std::io::stdout().flush();
                std::thread::sleep(std::time::Duration::from_secs(secs));
            }
            None => loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            },
        }
        server.stop();
        if let Some(d) = std::sync::Arc::into_inner(daemon) {
            d.shutdown();
        }
    }
    if let Some(server) = server {
        let hold = serve_hold.unwrap_or(0);
        if hold > 0 {
            println!("holding the endpoint for {hold}s");
            let _ = std::io::stdout().flush();
            std::thread::sleep(std::time::Duration::from_secs(hold));
        }
        server.stop();
    }
}

//! Regenerate the paper's evaluation artifacts.
//!
//! ```text
//! reproduce [--quick] [--threads <n>] [--metrics-out <path>]
//!           [--witness-out <path>] [--smt-ablation [app]]
//!           [--store <path>] [--dirty <api>] [--incremental-bench [app]]
//!           [table1] [table2] [table3] [fig10] [fig11] [pruning]
//!           [baseline] [aborts] [all]
//! ```
//!
//! With no selector (or `all`), every experiment runs. `--quick` shrinks
//! the performance sweeps for CI-scale runs. `--threads <n>` pins the
//! analyzer's worker count (equivalent to setting `WESEER_THREADS=<n>`;
//! the diagnosis output is identical for every value — see the CI
//! determinism job). `--metrics-out <path>` runs the diagnosis pipeline on
//! both apps with the observability registry enabled, prints the
//! funnel/timing report, and writes the JSON-lines metrics export to
//! `<path>`. `--witness-out <path>` replays every diagnosed cycle for a
//! concrete deadlock witness, prints the confirmed/not-reproduced funnel,
//! and writes one JSON line per report to `<path>` (byte-for-byte
//! deterministic across runs and thread counts; CI diffs it).
//! `--smt-ablation [broadleaf|shopizer]` diagnoses the app(s) once per
//! tier configuration of the SMT fast path (all tiers, each tier
//! individually off, all off), prints the full-solver reduction table,
//! writes a one-line summary to `BENCH_smt.json`, and exits nonzero if
//! any configuration changed a verdict or report (the tiers must be pure
//! optimizations). With no app argument both apps run. With no other
//! selector, only the requested export/ablation runs happen.
//!
//! `--store <path>` opens (or creates) the incremental store at `<path>`
//! and runs every selected experiment against it (equivalent to
//! `WESEER_STORE=<path>`): the first run fills it, later runs warm-start
//! from it and are byte-identical. `--dirty <api>` treats `<api>`'s trace
//! as changed (`WESEER_DIRTY=<api>`), invalidating exactly the stored
//! outcomes that involve it. `--incremental-bench [broadleaf|shopizer]`
//! times a cold, a warm, and a one-trace-dirtied pipeline run per app
//! against a throwaway store, writes `BENCH_incremental.json`, and exits
//! nonzero if the warm/dirtied outputs diverge from the cold run or the
//! warm run did any full solving or schedule exploration.

use weseer_bench::experiments;

fn main() {
    let mut metrics_out: Option<String> = None;
    let mut witness_out: Option<String> = None;
    let mut smt_ablation: Option<Vec<&'static str>> = None;
    let mut incremental: Option<Vec<&'static str>> = None;
    let mut rest: Vec<String> = Vec::new();
    let mut raw = std::env::args().skip(1).peekable();
    while let Some(arg) = raw.next() {
        if arg == "--smt-ablation" {
            // Optional app argument; default to both apps.
            let apps = match raw.peek().map(|s| s.as_str()) {
                Some("broadleaf") => {
                    raw.next();
                    vec!["broadleaf"]
                }
                Some("shopizer") => {
                    raw.next();
                    vec!["shopizer"]
                }
                _ => vec!["broadleaf", "shopizer"],
            };
            smt_ablation = Some(apps);
        } else if arg == "--incremental-bench" {
            let apps = match raw.peek().map(|s| s.as_str()) {
                Some("broadleaf") => {
                    raw.next();
                    vec!["broadleaf"]
                }
                Some("shopizer") => {
                    raw.next();
                    vec!["shopizer"]
                }
                _ => vec!["broadleaf", "shopizer"],
            };
            incremental = Some(apps);
        } else if arg == "--store" {
            let path = raw.next().unwrap_or_else(|| {
                eprintln!("--store requires a path argument");
                std::process::exit(2);
            });
            // The experiments build their own `Weseer` facades, which
            // consult this variable (see `Weseer::resolve_store`).
            std::env::set_var("WESEER_STORE", path);
        } else if arg == "--dirty" {
            let api = raw.next().unwrap_or_else(|| {
                eprintln!("--dirty requires an API name argument");
                std::process::exit(2);
            });
            std::env::set_var("WESEER_DIRTY", api);
        } else if arg == "--metrics-out" {
            let path = raw.next().unwrap_or_else(|| {
                eprintln!("--metrics-out requires a path argument");
                std::process::exit(2);
            });
            metrics_out = Some(path);
        } else if arg == "--witness-out" {
            let path = raw.next().unwrap_or_else(|| {
                eprintln!("--witness-out requires a path argument");
                std::process::exit(2);
            });
            witness_out = Some(path);
        } else if arg == "--threads" {
            let n = raw
                .next()
                .and_then(|v| v.parse::<usize>().ok().filter(|&n| n > 0))
                .unwrap_or_else(|| {
                    eprintln!("--threads requires a positive integer argument");
                    std::process::exit(2);
                });
            // The experiments build their own `Weseer` facades with the
            // default (auto) thread setting, which consults this variable.
            std::env::set_var("WESEER_THREADS", n.to_string());
        } else {
            rest.push(arg);
        }
    }
    let quick = rest.iter().any(|a| a == "--quick");
    let selected: Vec<&str> = rest
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let all = (selected.is_empty()
        && metrics_out.is_none()
        && witness_out.is_none()
        && smt_ablation.is_none()
        && incremental.is_none())
        || selected.contains(&"all");
    let want = |name: &str| all || selected.contains(&name);

    if want("table1") {
        println!("{}", experiments::table1());
    }
    if want("table2") {
        println!("{}", experiments::table2());
    }
    if want("baseline") {
        println!("{}", experiments::baseline());
    }
    if want("table3") {
        println!("{}", experiments::table3(if quick { 2 } else { 5 }));
    }
    if want("pruning") {
        println!("{}", experiments::pruning());
    }
    if want("fig10") {
        println!("{}", experiments::figure("broadleaf", quick));
    }
    if want("fig11") {
        println!("{}", experiments::figure("shopizer", quick));
    }
    if want("aborts") {
        println!("{}", experiments::aborts_claim(quick));
    }
    if let Some(path) = metrics_out {
        let (human, json) = experiments::metrics_report();
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("failed to write metrics to {path}: {e}");
            std::process::exit(1);
        }
        println!("{human}");
        println!("metrics written to {path}");
    }
    if let Some(path) = witness_out {
        let (human, json) = experiments::witness_report();
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("failed to write witnesses to {path}: {e}");
            std::process::exit(1);
        }
        println!("{human}");
        println!("witnesses written to {path}");
    }
    if let Some(apps) = smt_ablation {
        let ablation = experiments::smt_ablation(&apps);
        println!("{}", ablation.report);
        if let Err(e) = std::fs::write("BENCH_smt.json", &ablation.bench_json) {
            eprintln!("failed to write BENCH_smt.json: {e}");
            std::process::exit(1);
        }
        println!("bench summary written to BENCH_smt.json");
        if ablation.diverged {
            eprintln!(
                "smt-ablation: tier configurations diverged — the tiers must not change verdicts"
            );
            std::process::exit(1);
        }
    }
    if let Some(apps) = incremental {
        let bench = experiments::incremental_bench(&apps);
        println!("{}", bench.report);
        if let Err(e) = std::fs::write("BENCH_incremental.json", &bench.bench_json) {
            eprintln!("failed to write BENCH_incremental.json: {e}");
            std::process::exit(1);
        }
        println!("bench summary written to BENCH_incremental.json");
        if bench.diverged {
            eprintln!(
                "incremental-bench: warm/dirtied runs diverged from cold — \
                 the store must be a pure optimization"
            );
            std::process::exit(1);
        }
    }
}

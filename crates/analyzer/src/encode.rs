//! SMT encoding: importing trace terms into the analyzer's context and
//! generating conflict conditions (paper Alg. 3 and Fig. 9).
//!
//! Each analyzed trace instance gets a *prefix* (`A1.`, `A2.`) so that the
//! two concurrent executions of the same API have distinct symbolic inputs,
//! exactly as Fig. 9 renames `order_id` to `A1.order_id`.

use std::collections::HashMap;
use weseer_concolic::StmtRecord;
use weseer_smt::term::TermKind;
use weseer_smt::{Ctx, Sort, TermId};
use weseer_sqlir::ast::Term as CondTerm;
use weseer_sqlir::{Catalog, CmpOp, ColType, Cond, Operand, Pred, Value};

/// Imports terms from a trace's context into the analyzer context,
/// prefixing every variable name.
#[derive(Debug)]
pub struct Importer<'a> {
    src: &'a Ctx,
    prefix: String,
    memo: HashMap<TermId, TermId>,
}

impl<'a> Importer<'a> {
    /// New importer for one trace instance.
    pub fn new(src: &'a Ctx, prefix: impl Into<String>) -> Self {
        Importer {
            src,
            prefix: prefix.into(),
            memo: HashMap::new(),
        }
    }

    /// The instance prefix.
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    /// Import a term, renaming variables `v` to `{prefix}v`.
    pub fn import(&mut self, dst: &mut Ctx, t: TermId) -> TermId {
        if let Some(&d) = self.memo.get(&t) {
            return d;
        }
        let out = match self.src.kind(t).clone() {
            TermKind::Var(name) => {
                let sort = self.src.sort(t).clone();
                dst.var(format!("{}{}", self.prefix, name), sort)
            }
            TermKind::BoolConst(b) => dst.bool_const(b),
            TermKind::NumConst(r) => {
                if self.src.sort(t) == &Sort::Int {
                    dst.int(r.floor() as i64)
                } else {
                    dst.real(r)
                }
            }
            TermKind::StrConst(s) => dst.str_const(s),
            TermKind::Add(a, b) => {
                let (ia, ib) = (self.import(dst, a), self.import(dst, b));
                dst.add(ia, ib)
            }
            TermKind::Sub(a, b) => {
                let (ia, ib) = (self.import(dst, a), self.import(dst, b));
                dst.sub(ia, ib)
            }
            TermKind::Neg(a) => {
                let ia = self.import(dst, a);
                dst.neg(ia)
            }
            TermKind::MulConst(c, a) => {
                let ia = self.import(dst, a);
                dst.mul_const(c, ia)
            }
            TermKind::Cmp(k, a, b) => {
                let (ia, ib) = (self.import(dst, a), self.import(dst, b));
                match k {
                    weseer_smt::term::CmpKind::Lt => dst.lt(ia, ib),
                    weseer_smt::term::CmpKind::Le => dst.le(ia, ib),
                }
            }
            TermKind::Eq(a, b) => {
                let (ia, ib) = (self.import(dst, a), self.import(dst, b));
                dst.eq(ia, ib)
            }
            TermKind::Not(a) => {
                let ia = self.import(dst, a);
                dst.not(ia)
            }
            TermKind::And(parts) => {
                let imported: Vec<TermId> = parts.iter().map(|&p| self.import(dst, p)).collect();
                dst.and(imported)
            }
            TermKind::Or(parts) => {
                let imported: Vec<TermId> = parts.iter().map(|&p| self.import(dst, p)).collect();
                dst.or(imported)
            }
            TermKind::Store(a, i, v) => {
                let (ia, ii, iv) = (
                    self.import(dst, a),
                    self.import(dst, i),
                    self.import(dst, v),
                );
                dst.store(ia, ii, iv)
            }
            TermKind::Select(a, i) => {
                let (ia, ii) = (self.import(dst, a), self.import(dst, i));
                dst.select(ia, ii)
            }
        };
        self.memo.insert(t, out);
        out
    }
}

/// One trace instance participating in an encoding: its statements' terms
/// are imported through `imp`.
pub struct Side<'a, 'b> {
    /// The statement.
    pub rec: &'a StmtRecord,
    /// Importer of the owning instance.
    pub imp: &'a mut Importer<'b>,
}

/// Sort of a table column.
pub fn col_sort(catalog: &Catalog, table: &str, column: &str) -> Sort {
    let ty = catalog
        .table(table)
        .and_then(|t| t.column(column))
        .map(|c| c.ty)
        .unwrap_or(ColType::Int);
    match ty {
        ColType::Int => Sort::Int,
        ColType::Float => Sort::Real,
        ColType::Str => Sort::Str,
        ColType::Bool => Sort::Bool,
    }
}

/// The SMT variable standing for column `alias.column` of the assumed
/// conflicting row `r{edge}` (Fig. 9's `r1.oi.O_ID`).
pub fn r_var(dst: &mut Ctx, edge: usize, alias: &str, column: &str, sort: Sort) -> TermId {
    dst.var(format!("r{edge}.{alias}.{column}"), sort)
}

/// Term for a constant SQL value; `None` for NULL.
pub fn value_term(dst: &mut Ctx, v: &Value) -> Option<TermId> {
    Some(match v {
        Value::Int(i) => dst.int(*i),
        Value::Float(f) => {
            let r = weseer_smt::Rat::from_f64(*f);
            dst.real(r)
        }
        Value::Str(s) => dst.str_const(s.clone()),
        Value::Bool(b) => dst.bool_const(*b),
        Value::Null => return None,
    })
}

/// Term for a statement parameter: the recorded symbolic value (imported)
/// or a constant of its concrete value.
pub fn param_term(
    dst: &mut Ctx,
    side_rec: &StmtRecord,
    imp: &mut Importer<'_>,
    i: usize,
) -> Option<TermId> {
    let p = side_rec.params.get(i)?;
    match p.sym {
        Some(t) => Some(imp.import(dst, t)),
        None => value_term(dst, &p.concrete),
    }
}

/// Convert a query condition to a term, resolving operands through
/// `resolve`. Unresolvable or NULL-involving atoms become fresh
/// unconstrained booleans (they cannot refute satisfiability).
pub fn cond_to_term(
    dst: &mut Ctx,
    cond: &Cond,
    resolve: &mut dyn FnMut(&mut Ctx, &Operand) -> Option<TermId>,
) -> TermId {
    match cond {
        Cond::And(a, b) => {
            let (ta, tb) = (cond_to_term(dst, a, resolve), cond_to_term(dst, b, resolve));
            dst.and([ta, tb])
        }
        Cond::Or(a, b) => {
            let (ta, tb) = (cond_to_term(dst, a, resolve), cond_to_term(dst, b, resolve));
            dst.or([ta, tb])
        }
        Cond::Term(CondTerm::Cmp(p)) => pred_to_term(dst, p, resolve),
        Cond::Term(CondTerm::IsNull(_)) | Cond::Term(CondTerm::NotNull(_)) => {
            dst.fresh_var("nullcheck", Sort::Bool)
        }
    }
}

fn pred_to_term(
    dst: &mut Ctx,
    p: &Pred,
    resolve: &mut dyn FnMut(&mut Ctx, &Operand) -> Option<TermId>,
) -> TermId {
    let (Some(lhs), Some(rhs)) = (resolve(dst, &p.lhs), resolve(dst, &p.rhs)) else {
        return dst.fresh_var("opaque", Sort::Bool);
    };
    // Cross-sort comparisons (schema quirks) become opaque.
    let (sl, sr) = (dst.sort(lhs).clone(), dst.sort(rhs).clone());
    let compatible = sl == sr || (sl.is_numeric() && sr.is_numeric());
    if !compatible {
        return dst.fresh_var("sortmismatch", Sort::Bool);
    }
    if matches!(sl, Sort::Str | Sort::Bool) && !matches!(p.op, CmpOp::Eq | CmpOp::Ne) {
        return dst.fresh_var("strorder", Sort::Bool);
    }
    match p.op {
        CmpOp::Eq => dst.eq(lhs, rhs),
        CmpOp::Ne => dst.ne(lhs, rhs),
        CmpOp::Lt => dst.lt(lhs, rhs),
        CmpOp::Le => dst.le(lhs, rhs),
        CmpOp::Gt => dst.gt(lhs, rhs),
        CmpOp::Ge => dst.ge(lhs, rhs),
    }
}

/// Alg. 3 `GenUnifiedCondForRead`: the reader's query condition with every
/// column reference bound to the assumed row `r{edge}`.
pub fn unified_read_cond(
    dst: &mut Ctx,
    catalog: &Catalog,
    side: &mut Side<'_, '_>,
    edge: usize,
) -> TermId {
    let Some(q) = side.rec.stmt.query_condition() else {
        return dst.bool_const(true);
    };
    let alias_map = side.rec.stmt.alias_map();
    let rec = side.rec;
    let imp = &mut *side.imp;
    cond_to_term(dst, &q, &mut |dst, op| match op {
        Operand::Column { alias, column } => {
            let table = alias_map
                .iter()
                .find(|(a, _)| a == alias)
                .map(|(_, t)| t.as_str())?;
            let sort = col_sort(catalog, table, column);
            Some(r_var(dst, edge, alias, column, sort))
        }
        Operand::Param(i) => param_term(dst, rec, imp, *i),
        Operand::Const(v) => value_term(dst, v),
    })
}

/// Alg. 3 `GenUnifiedCondForWrite`: the writer's query condition with its
/// own-table columns bound to `r{edge}.{alias_r}.…` for every alias the
/// *reader* binds to the common table, disjoined.
pub fn unified_write_cond(
    dst: &mut Ctx,
    catalog: &Catalog,
    side: &mut Side<'_, '_>,
    reader_aliases: &[String],
    common_table: &str,
    edge: usize,
) -> TermId {
    let Some(q) = side.rec.stmt.query_condition() else {
        return dst.bool_const(true);
    };
    if reader_aliases.is_empty() {
        return dst.bool_const(true);
    }
    let writer_aliases = side.rec.stmt.aliases_of(common_table);
    let mut arms = Vec::new();
    for r_alias in reader_aliases {
        let rec = side.rec;
        let imp = &mut *side.imp;
        let arm = cond_to_term(dst, &q, &mut |dst, op| match op {
            Operand::Column { alias, column } => {
                if writer_aliases.contains(alias) {
                    let sort = col_sort(catalog, common_table, column);
                    Some(r_var(dst, edge, r_alias, column, sort))
                } else {
                    // Writer references a non-common table (not produced by
                    // the supported write statements) — opaque.
                    None
                }
            }
            Operand::Param(i) => param_term(dst, rec, imp, *i),
            Operand::Const(v) => value_term(dst, v),
        });
        arms.push(arm);
    }
    dst.or(arms)
}

/// Alg. 3 `GenAssociatedCond`: the assumed row `r{edge}` matches one of the
/// reader's recorded result rows (`res4.row0.…` symbols from Fig. 3/9).
pub fn associated_cond(
    dst: &mut Ctx,
    catalog: &Catalog,
    side: &mut Side<'_, '_>,
    edge: usize,
) -> TermId {
    if side.rec.rows.is_empty() {
        return dst.bool_const(true);
    }
    let alias_map = side.rec.stmt.alias_map();
    let mut rows = Vec::new();
    for row in &side.rec.rows {
        let mut cols = Vec::new();
        for (name, v) in &row.cols {
            let Some((alias, column)) = name.split_once('.') else {
                continue;
            };
            let Some((_, table)) = alias_map.iter().find(|(a, _)| a == alias) else {
                continue;
            };
            let sort = col_sort(catalog, table, column);
            let rv = r_var(dst, edge, alias, column, sort);
            let val = match v.sym {
                Some(t) => side.imp.import(dst, t),
                None => match value_term(dst, &v.concrete) {
                    Some(t) => t,
                    None => continue, // NULL column: unconstrained
                },
            };
            // Sorts can disagree when a NULL-typed column was symbolized
            // oddly; guard like pred_to_term.
            let (sl, sr) = (dst.sort(rv).clone(), dst.sort(val).clone());
            if sl == sr || (sl.is_numeric() && sr.is_numeric()) {
                cols.push(dst.eq(rv, val));
            }
        }
        rows.push(dst.and(cols));
    }
    dst.or(rows)
}

/// Alg. 3 `GenRangeConflictCond`: enlarge a shared range lock's predicates
/// with fresh boundary variables, unified onto `r{edge}`.
pub fn range_conflict_cond(
    dst: &mut Ctx,
    catalog: &Catalog,
    side: &mut Side<'_, '_>,
    lock: &crate::locks::SymLock,
    edge: usize,
) -> TermId {
    let Some(alias) = &lock.alias else {
        return dst.bool_const(true);
    };
    let alias_map = side.rec.stmt.alias_map();
    let table = alias_map
        .iter()
        .find(|(a, _)| a == alias)
        .map(|(_, t)| t.clone())
        .unwrap_or_default();
    let varl = dst.fresh_var("varl", Sort::Int);
    let varg = dst.fresh_var("varg", Sort::Int);
    let mut parts = Vec::new();
    for p in &lock.preds {
        let Operand::Column { column, .. } = &p.lhs else {
            continue;
        };
        let sort = col_sort(catalog, &table, column);
        if sort == Sort::Str || sort == Sort::Bool {
            // Enlargement is numeric; equality on strings stays exact.
            continue;
        }
        let var = r_var(dst, edge, alias, column, sort.clone());
        let rec = side.rec;
        let imp = &mut *side.imp;
        let exp = match &p.rhs {
            Operand::Param(i) => param_term(dst, rec, imp, *i),
            Operand::Const(v) => value_term(dst, v),
            Operand::Column {
                alias: a2,
                column: c2,
            } => {
                let t2 = alias_map
                    .iter()
                    .find(|(a, _)| a == a2)
                    .map(|(_, t)| t.clone())
                    .unwrap_or_default();
                let s2 = col_sort(catalog, &t2, c2);
                Some(r_var(dst, edge, a2, c2, s2))
            }
        };
        let Some(exp) = exp else { continue };
        if !dst.sort(exp).is_numeric() {
            continue;
        }
        let t = match p.op {
            CmpOp::Eq => {
                let a = dst.ge(var, exp);
                let b = dst.le(var, exp);
                dst.and([a, b])
            }
            CmpOp::Ne => {
                let a = dst.lt(var, exp);
                let b = dst.gt(var, exp);
                dst.or([a, b])
            }
            CmpOp::Lt => {
                let a = dst.le(var, varg);
                let b = dst.le(exp, varg);
                dst.and([a, b])
            }
            CmpOp::Le => {
                let a = dst.le(var, varg);
                let b = dst.lt(exp, varg);
                dst.and([a, b])
            }
            CmpOp::Gt => {
                let a = dst.ge(var, varl);
                let b = dst.ge(exp, varl);
                dst.and([a, b])
            }
            CmpOp::Ge => {
                let a = dst.ge(var, varl);
                let b = dst.gt(exp, varl);
                dst.and([a, b])
            }
        };
        parts.push(t);
    }
    dst.and(parts)
}

/// Alg. 3 `GenConflictCond`: the full conflict condition for a C-edge where
/// `w` writes `common_table` and `r` reads (or writes) it.
#[allow(clippy::too_many_arguments)]
pub fn gen_conflict_cond(
    dst: &mut Ctx,
    catalog: &Catalog,
    w: &mut Side<'_, '_>,
    r: &mut Side<'_, '_>,
    common_table: &str,
    edge: usize,
    use_range_locks: bool,
    oracle: Option<&dyn crate::indexes::IndexOracle>,
) -> TermId {
    let reader_aliases = r.rec.stmt.aliases_of(common_table);
    let read_c = unified_read_cond(dst, catalog, r, edge);
    let write_c = unified_write_cond(dst, catalog, w, &reader_aliases, common_table, edge);
    let assoc_c = associated_cond(dst, catalog, r, edge);
    let mut conflict = dst.and([read_c, write_c, assoc_c]);

    if use_range_locks {
        let locks_w = crate::locks::gen_exclusive_locks(&w.rec.stmt, common_table, catalog);
        let locks_r = crate::locks::gen_shared_locks(
            &r.rec.stmt,
            common_table,
            r.rec.is_empty,
            catalog,
            oracle,
        );
        for lr in locks_r
            .iter()
            .filter(|l| l.granularity == crate::locks::Granularity::Range)
        {
            let matching = locks_w.iter().any(|lw| match (&lw.index, &lr.index) {
                (Some(a), Some(b)) => a.name == b.name && a.table == b.table,
                _ => false,
            });
            if !matching {
                continue;
            }
            let range_c = range_conflict_cond(dst, catalog, r, lr, edge);
            let w_again = unified_write_cond(dst, catalog, w, &reader_aliases, common_table, edge);
            let arm = dst.and([w_again, range_c]);
            conflict = dst.or([conflict, arm]);
        }
    }
    conflict
}

#[cfg(test)]
mod tests {
    use super::*;
    use weseer_smt::{check, SolveResult, SolverConfig};

    #[test]
    fn importer_renames_variables() {
        let mut src = Ctx::new();
        let x = src.var("order_id", Sort::Int);
        let one = src.int(1);
        let sum = src.add(x, one);
        let mut dst = Ctx::new();
        let mut imp = Importer::new(&src, "A1.");
        let t = imp.import(&mut dst, sum);
        assert_eq!(dst.display(t), "(A1.order_id + 1)");
    }

    #[test]
    fn importer_memoizes_shared_structure() {
        let mut src = Ctx::new();
        let x = src.var("x", Sort::Int);
        let y = src.var("y", Sort::Int);
        let le = src.le(x, y);
        let mut dst = Ctx::new();
        let mut imp = Importer::new(&src, "P.");
        let a = imp.import(&mut dst, le);
        let b = imp.import(&mut dst, le);
        assert_eq!(a, b);
    }

    #[test]
    fn importer_handles_arrays_and_bools() {
        let mut src = Ctx::new();
        let arr = src.array_var("m", Sort::Int);
        let i = src.var("i", Sort::Int);
        let tt = src.bool_const(true);
        let stored = src.store(arr, i, tt);
        let sel = src.select(stored, i);
        let mut dst = Ctx::new();
        let mut imp = Importer::new(&src, "B.");
        let t = imp.import(&mut dst, sel);
        // A read over its own store at the same index is tautologically
        // satisfiable (and indeed true).
        let mut ctx = dst;
        match check(&mut ctx, t, &SolverConfig::default()) {
            SolveResult::Sat(_) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn value_terms_and_sorts() {
        let mut dst = Ctx::new();
        assert!(value_term(&mut dst, &Value::Null).is_none());
        let t = value_term(&mut dst, &Value::Int(5)).unwrap();
        assert_eq!(dst.sort(t), &Sort::Int);
        let t = value_term(&mut dst, &Value::str("x")).unwrap();
        assert_eq!(dst.sort(t), &Sort::Str);
    }
}

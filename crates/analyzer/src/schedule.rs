//! A small std-only scoped-thread pool with a deterministic merge.
//!
//! [`run_ordered`] maps a pure function over a slice on `threads` workers.
//! Workers claim contiguous chunks of indexes from a shared atomic cursor
//! (cheap work stealing: fast workers simply claim more chunks) and write
//! each result into its item's slot, so the returned `Vec` is in *input
//! order* no matter which worker finished when. Callers reduce that vector
//! sequentially, which is what makes the parallel diagnosis bit-identical
//! to the sequential one.
//!
//! `threads <= 1` (or a trivial slice) runs inline on the caller's thread
//! with no pool, no atomics, and no extra allocations.

use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolve a thread-count request: `0` means auto — the `WESEER_THREADS`
/// environment variable if set to a positive number, else
/// [`std::thread::available_parallelism`].
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Ok(v) = std::env::var("WESEER_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Map `f` over `items` on up to `threads` workers, returning the results
/// in input order. `f` must be pure up to its observability side effects —
/// nothing here serializes calls.
pub fn run_ordered<I, O, F>(items: &[I], threads: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(usize, &I) -> O + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.iter().enumerate().map(|(i, it)| f(i, it)).collect();
    }
    let workers = threads.min(n);
    // Small chunks keep the tail balanced; large enough to amortize the
    // cursor contention.
    let chunk = (n / (workers * 8)).max(1);
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<O>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        let (cursor, slots, f) = (&cursor, &slots, &f);
        for w in 0..workers {
            // Named threads give each worker its own labeled timeline lane.
            std::thread::Builder::new()
                .name(format!("analyzer.worker{w}"))
                .spawn_scoped(scope, move || {
                    let _span = weseer_obs::span(&format!("analyzer.worker{w}"));
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = (start + chunk).min(n);
                        for i in start..end {
                            let out = f(i, &items[i]);
                            *slots[i].lock().unwrap() = Some(out);
                        }
                    }
                })
                .expect("spawn analyzer worker");
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every index claimed exactly once")
        })
        .collect()
}

/// Bound on each shard's work queue in [`run_sharded`]: deep enough to
/// keep a shard busy, shallow enough that a stalled shard back-pressures
/// the router (and, transitively, a daemon's ingest channel) instead of
/// buffering unboundedly.
pub const SHARD_QUEUE_DEPTH: usize = 64;

/// Map `f` over `items` on `shards` worker shards, routing each item to
/// the shard `key(i, item) % shards` — so every item with the same key
/// (e.g. every transaction pair conflicting on the same table) lands on
/// the same worker. Results are returned in input order, and `on_ready`
/// observes them in input order *as the completed prefix grows*, which is
/// what lets a streaming caller emit verdicts while later items are still
/// in flight.
///
/// Unlike [`run_ordered`]'s work-stealing cursor, items flow through
/// bounded per-shard queues (capacity [`SHARD_QUEUE_DEPTH`]): a slow
/// shard fills its queue and blocks the router rather than accumulating
/// work. Per-shard `serve.shard{s}.queue_depth` gauges and
/// `serve.shard{s}.tasks` counters feed the obs plane.
///
/// Determinism: `f` must be pure up to observability side effects, and
/// both the returned vector and the `on_ready` sequence are in input
/// order — so the output is byte-identical to the inline (`shards <= 1`)
/// run no matter how items interleave across shards.
pub fn run_sharded<I, O, K, F, E>(
    items: &[I],
    shards: usize,
    key: K,
    f: F,
    mut on_ready: E,
) -> Vec<O>
where
    I: Sync,
    O: Send,
    K: Fn(usize, &I) -> u64 + Sync,
    F: Fn(usize, &I) -> O + Sync,
    E: FnMut(usize, &O),
{
    let n = items.len();
    if shards <= 1 || n <= 1 {
        let mut out = Vec::with_capacity(n);
        for (i, it) in items.iter().enumerate() {
            let o = f(i, it);
            on_ready(i, &o);
            out.push(o);
        }
        return out;
    }
    let shards = shards.min(n);
    let slots: Vec<Mutex<Option<O>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let depths: Vec<AtomicI64> = (0..shards).map(|_| AtomicI64::new(0)).collect();
    let (done_tx, done_rx) = std::sync::mpsc::channel::<usize>();

    std::thread::scope(|scope| {
        let (slots, depths, f, key) = (&slots, &depths, &f, &key);
        let mut queues = Vec::with_capacity(shards);
        for (s, depth) in depths.iter().enumerate() {
            let (tx, rx) = std::sync::mpsc::sync_channel::<usize>(SHARD_QUEUE_DEPTH);
            queues.push(tx);
            let done_tx = done_tx.clone();
            std::thread::Builder::new()
                .name(format!("serve.shard{s}"))
                .spawn_scoped(scope, move || {
                    let _span = weseer_obs::span(&format!("serve.shard{s}"));
                    while let Ok(i) = rx.recv() {
                        let d = depth.fetch_sub(1, Ordering::Relaxed) - 1;
                        weseer_obs::gauge_set(&format!("serve.shard{s}.queue_depth"), d);
                        *slots[i].lock().unwrap() = Some(f(i, &items[i]));
                        weseer_obs::add(&format!("serve.shard{s}.tasks"), 1);
                        if done_tx.send(i).is_err() {
                            break;
                        }
                    }
                })
                .expect("spawn shard worker");
        }
        drop(done_tx);

        // The router walks the items in input order and hashes each onto
        // its shard queue. A full queue blocks the send — backpressure,
        // not buffering.
        std::thread::Builder::new()
            .name("serve.router".into())
            .spawn_scoped(scope, move || {
                for (i, item) in items.iter().enumerate() {
                    let s = (key(i, item) % shards as u64) as usize;
                    let d = depths[s].fetch_add(1, Ordering::Relaxed) + 1;
                    weseer_obs::gauge_set(&format!("serve.shard{s}.queue_depth"), d);
                    if queues[s].send(i).is_err() {
                        break;
                    }
                }
                // Dropping the senders drains and retires the shards.
            })
            .expect("spawn shard router");

        // The merge runs on the caller's thread: completions arrive in
        // shard-race order, but `on_ready` fires strictly in input order.
        let mut completed = vec![false; n];
        let mut next = 0usize;
        for i in done_rx {
            completed[i] = true;
            while next < n && completed[next] {
                let slot = slots[next].lock().unwrap();
                on_ready(next, slot.as_ref().expect("completed slot is filled"));
                drop(slot);
                next += 1;
            }
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every item routed exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        for threads in [1, 2, 4, 7] {
            let out = run_ordered(&items, threads, |i, &x| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out, (0..1000).map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let calls = AtomicUsize::new(0);
        let items: Vec<u8> = vec![0; 257]; // not a multiple of any chunk size
        let out = run_ordered(&items, 4, |_, _| calls.fetch_add(1, Ordering::Relaxed));
        assert_eq!(out.len(), 257);
        assert_eq!(calls.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn empty_and_single() {
        let out: Vec<i32> = run_ordered(&[] as &[i32], 8, |_, &x| x);
        assert!(out.is_empty());
        let out = run_ordered(&[42], 8, |_, &x| x + 1);
        assert_eq!(out, vec![43]);
    }

    #[test]
    fn more_threads_than_items() {
        let out = run_ordered(&[1, 2, 3], 64, |_, &x| x * x);
        assert_eq!(out, vec![1, 4, 9]);
    }

    #[test]
    fn resolve_prefers_explicit_request() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn sharded_results_match_inline_at_any_shard_count() {
        let items: Vec<usize> = (0..500).collect();
        let expect: Vec<usize> = items.iter().map(|x| x * 7).collect();
        for shards in [1, 2, 4, 9] {
            let out = run_sharded(
                &items,
                shards,
                |_, &x| (x % 13) as u64,
                |_, &x| x * 7,
                |_, _| {},
            );
            assert_eq!(out, expect);
        }
    }

    #[test]
    fn on_ready_fires_in_input_order_for_every_item() {
        let items: Vec<usize> = (0..300).collect();
        let mut seen = Vec::new();
        run_sharded(
            &items,
            4,
            |_, &x| x as u64,
            |_, &x| x,
            |i, &o| {
                assert_eq!(i, o);
                seen.push(i);
            },
        );
        assert_eq!(seen, (0..300).collect::<Vec<_>>());
    }

    #[test]
    fn skewed_keys_exceeding_queue_depth_do_not_deadlock() {
        // Every item hashes to shard 0 and the item count dwarfs the
        // queue bound: the router must block and drain, not wedge.
        let items: Vec<usize> = (0..(SHARD_QUEUE_DEPTH * 4)).collect();
        let out = run_sharded(&items, 3, |_, _| 0, |_, &x| x + 1, |_, _| {});
        assert_eq!(out.len(), items.len());
        assert_eq!(out[0], 1);
    }

    #[test]
    fn sharded_runs_every_item_exactly_once() {
        let calls = AtomicUsize::new(0);
        let items: Vec<u8> = vec![0; 311];
        let out = run_sharded(
            &items,
            5,
            |i, _| (i % 5) as u64,
            |_, _| calls.fetch_add(1, Ordering::Relaxed),
            |_, _| {},
        );
        assert_eq!(out.len(), 311);
        assert_eq!(calls.load(Ordering::Relaxed), 311);
    }
}

//! A small std-only scoped-thread pool with a deterministic merge.
//!
//! [`run_ordered`] maps a pure function over a slice on `threads` workers.
//! Workers claim contiguous chunks of indexes from a shared atomic cursor
//! (cheap work stealing: fast workers simply claim more chunks) and write
//! each result into its item's slot, so the returned `Vec` is in *input
//! order* no matter which worker finished when. Callers reduce that vector
//! sequentially, which is what makes the parallel diagnosis bit-identical
//! to the sequential one.
//!
//! `threads <= 1` (or a trivial slice) runs inline on the caller's thread
//! with no pool, no atomics, and no extra allocations.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolve a thread-count request: `0` means auto — the `WESEER_THREADS`
/// environment variable if set to a positive number, else
/// [`std::thread::available_parallelism`].
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Ok(v) = std::env::var("WESEER_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Map `f` over `items` on up to `threads` workers, returning the results
/// in input order. `f` must be pure up to its observability side effects —
/// nothing here serializes calls.
pub fn run_ordered<I, O, F>(items: &[I], threads: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(usize, &I) -> O + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.iter().enumerate().map(|(i, it)| f(i, it)).collect();
    }
    let workers = threads.min(n);
    // Small chunks keep the tail balanced; large enough to amortize the
    // cursor contention.
    let chunk = (n / (workers * 8)).max(1);
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<O>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        let (cursor, slots, f) = (&cursor, &slots, &f);
        for w in 0..workers {
            // Named threads give each worker its own labeled timeline lane.
            std::thread::Builder::new()
                .name(format!("analyzer.worker{w}"))
                .spawn_scoped(scope, move || {
                    let _span = weseer_obs::span(&format!("analyzer.worker{w}"));
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = (start + chunk).min(n);
                        for i in start..end {
                            let out = f(i, &items[i]);
                            *slots[i].lock().unwrap() = Some(out);
                        }
                    }
                })
                .expect("spawn analyzer worker");
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every index claimed exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        for threads in [1, 2, 4, 7] {
            let out = run_ordered(&items, threads, |i, &x| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out, (0..1000).map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let calls = AtomicUsize::new(0);
        let items: Vec<u8> = vec![0; 257]; // not a multiple of any chunk size
        let out = run_ordered(&items, 4, |_, _| calls.fetch_add(1, Ordering::Relaxed));
        assert_eq!(out.len(), 257);
        assert_eq!(calls.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn empty_and_single() {
        let out: Vec<i32> = run_ordered(&[] as &[i32], 8, |_, &x| x);
        assert!(out.is_empty());
        let out = run_ordered(&[42], 8, |_, &x| x + 1);
        assert_eq!(out, vec![43]);
    }

    #[test]
    fn more_threads_than_items() {
        let out = run_ordered(&[1, 2, 3], 64, |_, &x| x * x);
        assert_eq!(out, vec![1, 4, 9]);
    }

    #[test]
    fn resolve_prefers_explicit_request() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
    }
}

//! Graphviz (DOT) exports of the analyzer's internal graphs — the paper's
//! Fig. 4 (SC-graph) and Fig. 8 (index usage graph) as artifacts
//! developers can render while investigating a report.

use crate::diagnose::CollectedTrace;
use crate::indexes::infer_possible_indexes;
use std::fmt::Write as _;
use weseer_sqlir::{Catalog, Statement};

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Render a statement's index usage graph (Fig. 8) as DOT: one vertex for
/// the always-available sources (SQL parameters/constants) and one per
/// table alias; edges are tagged with the index they traverse.
pub fn index_usage_dot(stmt: &Statement, catalog: &Catalog) -> String {
    let uses = infer_possible_indexes(stmt, catalog);
    let mut out = String::from("digraph index_usage {\n  rankdir=LR;\n");
    let _ = writeln!(out, "  params [label=\"SQL params\", shape=diamond];");
    for (alias, table) in stmt.alias_map() {
        let _ = writeln!(
            out,
            "  {alias} [label=\"{} ({})\", shape=box];",
            esc(&alias),
            esc(&table)
        );
    }
    for u in &uses {
        match &u.index {
            Some(idx) => {
                // Source: a predicate's other side — parameters or another
                // alias. For display we point from params when any related
                // predicate has a parameter/constant side, else from the
                // other alias mentioned.
                let mut sources: Vec<String> = Vec::new();
                for p in &u.preds {
                    match &p.rhs {
                        weseer_sqlir::Operand::Param(_) | weseer_sqlir::Operand::Const(_) => {
                            sources.push("params".to_string());
                        }
                        weseer_sqlir::Operand::Column { alias, .. } => {
                            sources.push(alias.clone());
                        }
                    }
                }
                sources.sort();
                sources.dedup();
                if sources.is_empty() {
                    sources.push("params".to_string());
                }
                for src in sources {
                    let _ = writeln!(
                        out,
                        "  {src} -> {} [label=\"{}\"];",
                        u.alias,
                        esc(&idx.name)
                    );
                }
            }
            None => {
                let _ = writeln!(
                    out,
                    "  {0} -> {0} [label=\"table scan\", style=dashed];",
                    u.alias
                );
            }
        }
    }
    out.push_str("}\n");
    out
}

/// Render the coarse SC-graph of two transaction instances (Fig. 4):
/// S-edges chain each instance's statements; C-edges (dashed, both ways)
/// connect statements that access a common table with at least one write.
pub fn sc_graph_dot(a: &CollectedTrace, a_txn: usize, b: &CollectedTrace, b_txn: usize) -> String {
    let mut out = String::from("digraph sc_graph {\n  rankdir=TB;\n");
    let instances = [("ins1", a, a_txn), ("ins2", b, b_txn)];
    for (tag, t, txn) in &instances {
        let stmts = t.trace.statements_of(*txn);
        let _ = writeln!(out, "  subgraph cluster_{tag} {{");
        let _ = writeln!(out, "    label=\"{} ({tag})\";", esc(&t.trace.api));
        for s in &stmts {
            let _ = writeln!(
                out,
                "    {tag}_{} [label=\"{tag}.{}\\n{}\", shape=box];",
                s.index,
                s.label(),
                esc(&truncate(&s.stmt.to_string(), 48)),
            );
        }
        for w in stmts.windows(2) {
            let _ = writeln!(
                out,
                "    {tag}_{} -> {tag}_{} [label=\"S\"];",
                w[0].index, w[1].index
            );
        }
        let _ = writeln!(out, "  }}");
    }
    // C-edges.
    let a_stmts = a.trace.statements_of(a_txn);
    let b_stmts = b.trace.statements_of(b_txn);
    for sa in &a_stmts {
        for sb in &b_stmts {
            let shared_write = sa.stmt.tables().iter().any(|t| {
                sb.stmt.tables().contains(t)
                    && (sa.stmt.written_table() == Some(t.as_str())
                        || sb.stmt.written_table() == Some(t.as_str()))
            });
            if shared_write {
                let _ = writeln!(
                    out,
                    "  ins1_{} -> ins2_{} [label=\"C\", style=dashed, dir=both];",
                    sa.index, sb.index
                );
            }
        }
    }
    out.push_str("}\n");
    out
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weseer_sqlir::{parser::parse, ColType, TableBuilder};

    fn catalog() -> Catalog {
        Catalog::new(vec![
            TableBuilder::new("Order")
                .col("ID", ColType::Int)
                .col("NOTE", ColType::Str)
                .primary_key(&["ID"])
                .build()
                .unwrap(),
            TableBuilder::new("OrderItem")
                .col("ID", ColType::Int)
                .col("O_ID", ColType::Int)
                .primary_key(&["ID"])
                .foreign_key("O_ID", "Order", "ID")
                .build()
                .unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn index_usage_dot_contains_edges() {
        let cat = catalog();
        let q =
            parse("SELECT * FROM OrderItem oi JOIN Order o ON o.ID = oi.O_ID WHERE oi.O_ID = ?")
                .unwrap();
        let dot = index_usage_dot(&q, &cat);
        assert!(dot.starts_with("digraph index_usage"));
        assert!(
            dot.contains("params -> oi [label=\"idx_orderitem_o_id\"]"),
            "{dot}"
        );
        assert!(dot.contains("-> o [label=\"PRIMARY\"]"), "{dot}");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn scan_rendered_dashed() {
        let cat = catalog();
        // NOTE is unindexed → no usable index → full scan.
        let q = parse("SELECT * FROM Order o WHERE o.NOTE = ?").unwrap();
        let dot = index_usage_dot(&q, &cat);
        assert!(dot.contains("table scan"), "{dot}");
    }
}

//! Deadlock reports (the output of Fig. 2's deadlock analyzer).

use crate::diagnose::DiagnosisStats;
use std::fmt;
use weseer_concolic::StackTrace;

/// Identifies the four statements of a 2-transaction deadlock cycle
/// (Fig. 4's `[ins1.Q4 → ins1.Q6 → ins2.Q4 → ins2.Q6]`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CycleId {
    /// API of instance A.
    pub a_api: String,
    /// API of instance B.
    pub b_api: String,
    /// Transaction index within A's trace.
    pub a_txn: usize,
    /// Transaction index within B's trace.
    pub b_txn: usize,
    /// A's lock-holding statement (index into A's trace).
    pub a_hold: usize,
    /// A's waiting statement.
    pub a_wait: usize,
    /// B's lock-holding statement.
    pub b_hold: usize,
    /// B's waiting statement.
    pub b_wait: usize,
}

/// One statement's role in the report.
#[derive(Debug, Clone)]
pub struct ReportedStatement {
    /// `A1.Q4`-style label.
    pub label: String,
    /// Rendered SQL template.
    pub sql: String,
    /// The table on which this statement conflicts.
    pub table: String,
    /// The code that triggered the statement (Sec. VI).
    pub trigger: StackTrace,
}

/// A confirmed potential deadlock with everything a developer needs to
/// understand and reproduce it (Fig. 2's report contents: involved API,
/// inputs, initial DB state, SQL statements, triggering code).
#[derive(Debug, Clone)]
pub struct DeadlockReport {
    /// The cycle.
    pub cycle: CycleId,
    /// The four statements (A-hold, A-wait, B-hold, B-wait).
    pub statements: Vec<ReportedStatement>,
    /// Satisfying assignment excerpt: API inputs and database state that
    /// trigger the deadlock, from the SMT model.
    pub model: Vec<(String, String)>,
    /// The full SAT model over both instances' `A1.` / `A2.` namespaces.
    /// Verdict-cache hits translate the canonical model back per query
    /// ([`weseer_smt::VerdictCache`]), so this is schedule-independent —
    /// identical across thread counts and pair orders. The replay engine
    /// concretizes symbolic parameters from it.
    pub sat_model: weseer_smt::Model,
}

impl DeadlockReport {
    /// Whether this deadlock involves the two given APIs (order
    /// insensitive).
    pub fn involves(&self, api1: &str, api2: &str) -> bool {
        (self.cycle.a_api == api1 && self.cycle.b_api == api2)
            || (self.cycle.a_api == api2 && self.cycle.b_api == api1)
    }

    /// The distinct conflict tables.
    pub fn tables(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for s in &self.statements {
            if !out.contains(&s.table) {
                out.push(s.table.clone());
            }
        }
        out
    }
}

impl fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "deadlock: {} (txn {}) <-> {} (txn {})",
            self.cycle.a_api, self.cycle.a_txn, self.cycle.b_api, self.cycle.b_txn
        )?;
        for s in &self.statements {
            writeln!(f, "  {} on {}: {}", s.label, s.table, s.sql)?;
            if let Some(top) = s.trigger.top() {
                writeln!(f, "    triggered at {top}")?;
            }
        }
        if !self.model.is_empty() {
            writeln!(f, "  witness assignment:")?;
            for (k, v) in self.model.iter().take(12) {
                writeln!(f, "    {k} = {v}")?;
            }
        }
        Ok(())
    }
}

/// Render the diagnosis funnel and per-phase wall times as a short text
/// block for the end of an analysis report.
pub fn render_stats(stats: &DiagnosisStats) -> String {
    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    format!(
        "diagnosis funnel:\n\
         \x20 txn pairs examined      {:>8}\n\
         \x20 after phase 1 filter    {:>8}\n\
         \x20 coarse cycles (phase 2) {:>8}\n\
         \x20 fine candidates         {:>8}\n\
         \x20 SMT sat/unsat/unknown   {:>8} / {} / {}\n\
         phase wall times: phase1 {:.1}ms, phase2 {:.1}ms, phase3 {:.1}ms\n",
        stats.txn_pairs,
        stats.pairs_after_phase1,
        stats.coarse_cycles,
        stats.fine_candidates,
        stats.smt_sat,
        stats.smt_unsat,
        stats.smt_unknown,
        ms(stats.phase1_time),
        ms(stats.phase2_time),
        ms(stats.phase3_time),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_stats_includes_funnel_and_times() {
        let stats = DiagnosisStats {
            txn_pairs: 10,
            pairs_after_phase1: 4,
            coarse_cycles: 7,
            prefix_kills: 0,
            fine_candidates: 3,
            smt_sat: 1,
            smt_unsat: 2,
            smt_unknown: 0,
            phase1_time: std::time::Duration::from_millis(2),
            phase2_time: std::time::Duration::from_millis(5),
            phase3_time: std::time::Duration::from_millis(30),
        };
        let s = render_stats(&stats);
        assert!(s.contains("txn pairs examined"));
        assert!(s.contains("10"));
        assert!(s.contains("1 / 2 / 0"));
        assert!(s.contains("phase3 30.0ms"));
    }

    fn sample() -> DeadlockReport {
        DeadlockReport {
            cycle: CycleId {
                a_api: "Add2".into(),
                b_api: "Ship".into(),
                a_txn: 0,
                b_txn: 0,
                a_hold: 0,
                a_wait: 1,
                b_hold: 0,
                b_wait: 1,
            },
            statements: vec![ReportedStatement {
                label: "A1.Q4".into(),
                sql: "SELECT …".into(),
                table: "Product".into(),
                trigger: StackTrace::new(),
            }],
            model: vec![("A1.order_id".into(), "1".into())],
            sat_model: weseer_smt::Model::default(),
        }
    }

    #[test]
    fn involves_is_order_insensitive() {
        let r = sample();
        assert!(r.involves("Add2", "Ship"));
        assert!(r.involves("Ship", "Add2"));
        assert!(!r.involves("Ship", "Checkout"));
    }

    #[test]
    fn display_includes_essentials() {
        let r = sample();
        let s = r.to_string();
        assert!(s.contains("Add2"));
        assert!(s.contains("Product"));
        assert!(s.contains("A1.order_id"));
    }

    #[test]
    fn tables_dedup() {
        let mut r = sample();
        r.statements.push(r.statements[0].clone());
        assert_eq!(r.tables(), vec!["Product".to_string()]);
    }
}

//! # weseer-analyzer
//!
//! WeSEER's offline deadlock analyzer (paper Sec. V): the three-phase
//! diagnosis over concolic traces with fine-grained database lock modeling
//! and SMT-checked conflict conditions.
//!
//! * [`indexes`] — the index usage graph and `InferPossibleIndexes`
//!   (Sec. V-C2, Fig. 8);
//! * [`locks`] — Alg. 2 shared/exclusive lock generation and the potential
//!   conflict test;
//! * [`encode`] — Alg. 3 conflict conditions (unified read/write
//!   conditions, associated conditions, range-lock enlargement) plus term
//!   import with instance prefixes (Fig. 9's `A1.order_id`);
//! * [`pairs`] — the phase-1 pair generator: the transaction-level
//!   conflict graph built once, yielding conflicting pairs in canonical
//!   order;
//! * [`prefix`] — tier 2 of the tiered solving pipeline: per-transaction
//!   path-condition prefixes simplified and pre-solved once per run,
//!   killing pairs whose prefix is already UNSAT and feeding
//!   pre-simplified conjuncts to the fine phase;
//! * [`schedule`] — the std-only chunk-claiming thread pool with an
//!   order-preserving merge (`threads = 1` runs inline);
//! * [`diagnose`] — the three phases staged as pure per-pair scans and
//!   fine checks with ordered reduces, SMT dispatch through the verdict
//!   cache, and statistics; also the STEPDAD/REDACT-style coarse baseline
//!   for the Sec. VII-B comparison;
//! * [`report`] — developer-facing deadlock reports with triggering code
//!   and witness assignments;
//! * [`anomaly`] — the MVCC side-channel: a table-level screen for
//!   weak-isolation anomaly candidates (lost update, write skew, read
//!   fracture) that the replay engine confirms by exploring interleavings
//!   at the requested isolation level.

pub mod anomaly;
pub mod diagnose;
pub mod encode;
pub mod indexes;
pub mod locks;
pub mod pairs;
pub mod prefix;
pub mod report;
pub mod schedule;
pub mod viz;

pub use anomaly::{find_anomaly_candidates, AnomalyCandidate};
pub use diagnose::{
    coarse_cycle_count, diagnose, diagnose_incremental, diagnose_streaming, diagnose_with_oracle,
    pair_shard_key, AnalyzerConfig, CollectedTrace, Diagnosis, DiagnosisStats, StoreCtx,
    LOCK_MODEL_VERSION,
};
pub use indexes::IndexOracle;
pub use pairs::{generate_pairs, PairJob, PairSet};
pub use prefix::PrefixTable;
pub use report::{render_stats, CycleId, DeadlockReport, ReportedStatement};
pub use schedule::{resolve_threads, run_ordered, run_sharded, SHARD_QUEUE_DEPTH};

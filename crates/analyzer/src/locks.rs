//! Symbolic lock generation (paper Alg. 2).
//!
//! Given a statement and the *common table* of a potential conflict, these
//! functions enumerate the locks the database may acquire: row locks for
//! unique point queries, range locks (with their predicates) for scans and
//! empty reads, a table lock when no index is usable, and exclusive
//! row/range locks for the write set of UPDATE/INSERT/DELETE.

use crate::indexes::{infer_possible_indexes, refine_with_oracle, IndexOracle, IndexUse};
use std::sync::Arc;
use weseer_sqlir::cond::is_point_query;
use weseer_sqlir::{Catalog, IndexDef, Pred, Statement};

/// Lock granularity (paper: `ROW`, `RANGE`, `TABLE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Granularity {
    /// Single index entry.
    Row,
    /// A predicate-bounded range (gap/next-key).
    Range,
    /// Whole table.
    Table,
}

/// Shared or exclusive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymMode {
    /// Shared.
    S,
    /// Exclusive.
    X,
}

/// A symbolic lock descriptor.
#[derive(Debug, Clone)]
pub struct SymLock {
    /// Locked index; `None` for table locks.
    pub index: Option<Arc<IndexDef>>,
    /// Granularity.
    pub granularity: Granularity,
    /// Mode.
    pub mode: SymMode,
    /// Predicates bounding a range lock (paper's `cond`); oriented so the
    /// indexed column is on the left. Empty for row/table locks and for
    /// exclusive range locks (`NULL` in Alg. 2).
    pub preds: Vec<Pred>,
    /// The table alias the lock was derived through (for unification).
    pub alias: Option<String>,
}

/// Alg. 2 `GenSharedLocks`: locks acquired while *reading* `target_table`.
///
/// `is_empty` is whether the statement fetched an empty result at runtime
/// (empty reads still take range locks protecting the empty range — the
/// root cause of d1, d3, d7, …).
pub fn gen_shared_locks(
    stmt: &Statement,
    target_table: &str,
    is_empty: bool,
    catalog: &Catalog,
    oracle: Option<&dyn IndexOracle>,
) -> Vec<SymLock> {
    let mut uses = infer_possible_indexes(stmt, catalog);
    if let Some(oracle) = oracle {
        uses = refine_with_oracle(uses, stmt, oracle);
    }
    // An INSERT's "read phase" is its duplicate check: it only locks
    // *unique* indexes (InnoDB takes an S lock on a conflicting entry /
    // its gap); non-unique secondary entries are written without any
    // shared-lock traversal.
    let insert_dup_check_only = matches!(stmt, Statement::Insert(_));
    let mut locks = Vec::new();
    for u in uses.iter().filter(|u| u.table == target_table) {
        let IndexUse {
            alias,
            index,
            preds,
            ..
        } = u;
        let Some(index) = index else {
            continue; // table scan handled below
        };
        if insert_dup_check_only && !index.unique {
            continue;
        }
        if !is_empty {
            if index.unique && is_point_query(preds, index) {
                locks.push(SymLock {
                    index: Some(index.clone()),
                    granularity: Granularity::Row,
                    mode: SymMode::S,
                    preds: vec![],
                    alias: Some(alias.clone()),
                });
            } else {
                locks.push(SymLock {
                    index: Some(index.clone()),
                    granularity: Granularity::Range,
                    mode: SymMode::S,
                    preds: preds.clone(),
                    alias: Some(alias.clone()),
                });
            }
            if index.is_secondary() {
                // Protect the fetched row on the primary index too.
                let def = catalog.table(target_table).expect("table exists");
                locks.push(SymLock {
                    index: Some(Arc::new(def.primary_index().clone())),
                    granularity: Granularity::Row,
                    mode: SymMode::S,
                    preds: vec![],
                    alias: Some(alias.clone()),
                });
            }
        } else {
            // Empty read: a range lock protects the empty read set.
            locks.push(SymLock {
                index: Some(index.clone()),
                granularity: Granularity::Range,
                mode: SymMode::S,
                preds: preds.clone(),
                alias: Some(alias.clone()),
            });
        }
    }
    if locks.is_empty() {
        // No usable indexes: table-level lock (Alg. 2 line 19).
        let alias = uses
            .iter()
            .find(|u| u.table == target_table)
            .map(|u| u.alias.clone());
        locks.push(SymLock {
            index: None,
            granularity: Granularity::Table,
            mode: SymMode::S,
            preds: vec![],
            alias,
        });
    }
    locks
}

/// Alg. 2 `GenExclusiveLocks`: locks acquired by the write set of an
/// UPDATE/INSERT/DELETE on `target_table`.
pub fn gen_exclusive_locks(
    stmt: &Statement,
    target_table: &str,
    catalog: &Catalog,
) -> Vec<SymLock> {
    let def = match catalog.table(target_table) {
        Some(d) => d,
        None => return vec![],
    };
    let mut locks = vec![SymLock {
        index: Some(Arc::new(def.primary_index().clone())),
        granularity: Granularity::Row,
        mode: SymMode::X,
        preds: vec![],
        alias: stmt.aliases_of(target_table).first().cloned(),
    }];
    let written = stmt.written_columns();
    let writes_all = matches!(stmt, Statement::Delete(_) | Statement::Insert(_));
    for idx in def.secondary_indexes() {
        let touched = writes_all || idx.columns.iter().any(|c| written.contains(c));
        if !touched {
            continue;
        }
        locks.push(SymLock {
            index: Some(Arc::new(idx.clone())),
            granularity: if idx.unique {
                Granularity::Row
            } else {
                Granularity::Range
            },
            mode: SymMode::X,
            preds: vec![],
            alias: stmt.aliases_of(target_table).first().cloned(),
        });
    }
    locks
}

/// Whether two lock sets have a potential conflict: a pair of locks on the
/// same index (or any lock vs. a table lock) with at least one exclusive.
pub fn potential_conflict(a: &[SymLock], b: &[SymLock]) -> bool {
    a.iter().any(|la| {
        b.iter().any(|lb| {
            let one_exclusive = la.mode == SymMode::X || lb.mode == SymMode::X;
            if !one_exclusive {
                return false;
            }
            match (&la.index, &lb.index) {
                (None, _) | (_, None) => true, // table lock vs anything
                (Some(ia), Some(ib)) => ia.name == ib.name && ia.table == ib.table,
            }
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use weseer_sqlir::{parser::parse, Catalog, ColType, TableBuilder};

    fn catalog() -> Catalog {
        Catalog::new(vec![
            TableBuilder::new("Product")
                .col("ID", ColType::Int)
                .col("QTY", ColType::Int)
                .primary_key(&["ID"])
                .build()
                .unwrap(),
            TableBuilder::new("OrderItem")
                .col("ID", ColType::Int)
                .col("O_ID", ColType::Int)
                .col("P_ID", ColType::Int)
                .col("QTY", ColType::Int)
                .primary_key(&["ID"])
                .foreign_key("O_ID", "Order", "ID")
                .foreign_key("P_ID", "Product", "ID")
                .build()
                .unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn unique_point_read_takes_row_lock() {
        let cat = catalog();
        let q = parse("SELECT * FROM Product p WHERE p.ID = ?").unwrap();
        let locks = gen_shared_locks(&q, "Product", false, &cat, None);
        assert_eq!(locks.len(), 1);
        assert_eq!(locks[0].granularity, Granularity::Row);
        assert_eq!(locks[0].mode, SymMode::S);
    }

    #[test]
    fn empty_read_takes_range_lock() {
        let cat = catalog();
        let q = parse("SELECT * FROM Product p WHERE p.ID = ?").unwrap();
        let locks = gen_shared_locks(&q, "Product", true, &cat, None);
        assert_eq!(locks.len(), 1);
        assert_eq!(locks[0].granularity, Granularity::Range);
        assert_eq!(locks[0].preds.len(), 1);
    }

    #[test]
    fn secondary_scan_adds_primary_row_lock() {
        let cat = catalog();
        let q = parse("SELECT * FROM OrderItem oi WHERE oi.O_ID = ?").unwrap();
        let locks = gen_shared_locks(&q, "OrderItem", false, &cat, None);
        // Range on the secondary + row on PRIMARY.
        assert!(locks.iter().any(|l| l.granularity == Granularity::Range
            && l.index.as_ref().unwrap().name == "idx_orderitem_o_id"));
        assert!(locks
            .iter()
            .any(|l| l.granularity == Granularity::Row
                && l.index.as_ref().unwrap().name == "PRIMARY"));
    }

    #[test]
    fn unindexed_read_takes_table_lock() {
        let cat = catalog();
        let q = parse("SELECT * FROM Product p WHERE p.QTY > ?").unwrap();
        let locks = gen_shared_locks(&q, "Product", false, &cat, None);
        assert_eq!(locks.len(), 1);
        assert_eq!(locks[0].granularity, Granularity::Table);
        assert!(locks[0].index.is_none());
    }

    #[test]
    fn update_locks_primary_and_touched_secondaries() {
        let cat = catalog();
        let u = parse("UPDATE OrderItem SET QTY = ? WHERE ID = ?").unwrap();
        let locks = gen_exclusive_locks(&u, "OrderItem", &cat);
        // QTY is unindexed → only the primary row X lock.
        assert_eq!(locks.len(), 1);
        assert_eq!(locks[0].mode, SymMode::X);
        assert_eq!(locks[0].index.as_ref().unwrap().name, "PRIMARY");

        let u = parse("UPDATE OrderItem SET O_ID = ? WHERE ID = ?").unwrap();
        let locks = gen_exclusive_locks(&u, "OrderItem", &cat);
        assert_eq!(locks.len(), 2);
        assert!(locks
            .iter()
            .any(|l| l.index.as_ref().unwrap().name == "idx_orderitem_o_id"
                && l.granularity == Granularity::Range));
    }

    #[test]
    fn insert_touches_every_index() {
        let cat = catalog();
        let i = parse("INSERT INTO OrderItem (ID, O_ID, P_ID, QTY) VALUES (?, ?, ?, ?)").unwrap();
        let locks = gen_exclusive_locks(&i, "OrderItem", &cat);
        assert_eq!(locks.len(), 3); // PRIMARY + two FK indexes
        assert!(locks.iter().all(|l| l.mode == SymMode::X));
    }

    #[test]
    fn conflict_requires_same_index_and_exclusivity() {
        let cat = catalog();
        let sel = parse("SELECT * FROM Product p WHERE p.ID = ?").unwrap();
        let upd = parse("UPDATE Product SET QTY = ? WHERE ID = ?").unwrap();
        let s_locks = gen_shared_locks(&sel, "Product", false, &cat, None);
        let x_locks = gen_exclusive_locks(&upd, "Product", &cat);
        assert!(potential_conflict(&x_locks, &s_locks));
        // Two readers never conflict.
        assert!(!potential_conflict(&s_locks, &s_locks));
        // Different indexes: OrderItem O_ID range vs Product primary X.
        let oi = parse("SELECT * FROM OrderItem oi WHERE oi.O_ID = ?").unwrap();
        let oi_locks = gen_shared_locks(&oi, "OrderItem", false, &cat, None);
        assert!(!potential_conflict(&x_locks, &oi_locks));
    }

    #[test]
    fn table_lock_conflicts_with_everything_on_table() {
        let cat = catalog();
        let scan = parse("SELECT * FROM Product p WHERE p.QTY > ?").unwrap();
        let upd = parse("UPDATE Product SET QTY = ? WHERE ID = ?").unwrap();
        let s = gen_shared_locks(&scan, "Product", false, &cat, None);
        let x = gen_exclusive_locks(&upd, "Product", &cat);
        assert!(potential_conflict(&x, &s));
    }
}

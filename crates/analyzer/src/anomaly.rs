//! Static weak-isolation anomaly candidates over concolic traces.
//!
//! The deadlock phases ask "can these two transactions' lock acquisitions
//! cycle?"; this oracle asks the MVCC question: *if the deployment ran at
//! a weaker isolation level than serializable, which transaction pairs
//! could exhibit a lost update, write skew, or read fracture?* It is a
//! table-level screen in the spirit of phase 1's conflict graph — cheap,
//! deterministic, and deliberately over-approximate. Every candidate
//! names the isolation levels it can occur under; the replay engine's
//! anomaly explorer (`weseer-replay`) then confirms or refutes it by
//! actually searching interleavings at that level.
//!
//! Levels are plain kebab-case strings (`read-committed`,
//! `repeatable-read`, `snapshot`) so the analyzer stays free of any
//! storage-engine dependency; they match
//! `weseer_db::IsolationLevel::name` exactly.
//!
//! Candidate rules (all require both transactions to have committed):
//!
//! * **lost-update** — both transactions plain-read a table before
//!   writing it (a read-modify-write). Possible wherever stale RMWs
//!   commit: `read-committed` and `repeatable-read` (first-updater-wins
//!   kills it at `snapshot`).
//! * **write-skew** — each transaction plain-reads a table the other
//!   writes (crossed rw-antidependencies). Possible at every weak level
//!   including `snapshot`.
//! * **read-fracture** — one transaction plain-reads the same table
//!   twice while the other writes it. Only `read-committed` re-snapshots
//!   between statements.

use crate::diagnose::CollectedTrace;
use std::fmt::Write as _;
use weseer_sqlir::Statement;

/// One statically identified anomaly candidate, to be confirmed by the
/// replay engine at the named isolation levels.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct AnomalyCandidate {
    /// Kebab-case anomaly kind (`lost-update`, `write-skew`,
    /// `read-fracture`).
    pub kind: String,
    /// The conflicted table (write skew: lexicographically first of the
    /// two crossed tables).
    pub table: String,
    /// First API (instance `A1`).
    pub a_api: String,
    /// Transaction ordinal within `a_api`'s trace.
    pub a_txn: usize,
    /// Second API (instance `A2`; may equal `a_api` — two concurrent
    /// instances of one endpoint).
    pub b_api: String,
    /// Transaction ordinal within `b_api`'s trace.
    pub b_txn: usize,
    /// Isolation levels the anomaly can occur under, weakest first.
    pub levels: Vec<String>,
    /// Human-readable explanation.
    pub detail: String,
}

impl AnomalyCandidate {
    /// Stable identity for dedup and verdict-store keys.
    pub fn signature(&self) -> String {
        format!(
            "{}|{}|{}#{}|{}#{}",
            self.kind, self.table, self.a_api, self.a_txn, self.b_api, self.b_txn
        )
    }

    /// Canonical single-line JSON rendering (stable field order).
    pub fn to_json(&self) -> String {
        let esc = |s: &str| {
            let mut out = String::with_capacity(s.len());
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    c => out.push(c),
                }
            }
            out
        };
        let mut s = format!(
            "{{\"kind\":\"{}\",\"table\":\"{}\",\"a_api\":\"{}\",\"a_txn\":{},\"b_api\":\"{}\",\"b_txn\":{},\"levels\":[",
            esc(&self.kind),
            esc(&self.table),
            esc(&self.a_api),
            self.a_txn,
            esc(&self.b_api),
            self.b_txn
        );
        for (i, l) in self.levels.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{}\"", esc(l));
        }
        let _ = write!(s, "],\"detail\":\"{}\"}}", esc(&self.detail));
        s
    }
}

/// Table-level read/write profile of one traced transaction.
#[derive(Debug, Default)]
struct TxnProfile {
    /// Tables plain-SELECT'd (snapshot reads under MVCC).
    plain_reads: Vec<String>,
    /// Tables written (UPDATE/INSERT/DELETE/SELECT FOR UPDATE).
    writes: Vec<String>,
    /// Tables plain-read *before* a later write to the same table (RMW).
    rmw: Vec<String>,
    /// Tables plain-read by two or more statements.
    repeated_reads: Vec<String>,
}

fn profile(trace: &CollectedTrace, txn: usize) -> Option<TxnProfile> {
    let tt = trace.trace.txns.get(txn)?;
    if !tt.committed {
        return None;
    }
    let mut p = TxnProfile::default();
    let mut read_counts: Vec<(String, usize)> = Vec::new();
    for rec in trace.trace.statements_of(tt.id) {
        let is_plain_select = matches!(&rec.stmt, Statement::Select(s) if !s.for_update);
        if is_plain_select {
            for t in rec.stmt.tables() {
                match read_counts.iter_mut().find(|(n, _)| *n == t) {
                    Some((_, c)) => *c += 1,
                    None => read_counts.push((t.clone(), 1)),
                }
                if !p.plain_reads.contains(&t) {
                    p.plain_reads.push(t);
                }
            }
        } else if let Some(w) = rec.stmt.written_table() {
            let w = w.to_string();
            if p.plain_reads.contains(&w) && !p.rmw.contains(&w) {
                p.rmw.push(w.clone());
            }
            if !p.writes.contains(&w) {
                p.writes.push(w);
            }
        }
    }
    p.repeated_reads = read_counts
        .into_iter()
        .filter(|(_, c)| *c >= 2)
        .map(|(t, _)| t)
        .collect();
    Some(p)
}

const WEAK_RMW: [&str; 2] = ["read-committed", "repeatable-read"];
const WEAK_ALL: [&str; 3] = ["read-committed", "repeatable-read", "snapshot"];
const WEAK_RC: [&str; 1] = ["read-committed"];

fn levels(ls: &[&str]) -> Vec<String> {
    ls.iter().map(|s| s.to_string()).collect()
}

/// Scan every committed transaction pair — including a transaction paired
/// with itself as a second concurrent instance — for table-level anomaly
/// structure. Output is sorted and deduplicated; byte-identical across
/// runs and thread counts.
pub fn find_anomaly_candidates(traces: &[CollectedTrace]) -> Vec<AnomalyCandidate> {
    let _span = weseer_obs::span("analyzer.anomaly.scan");
    // (trace index, txn ordinal, profile) for committed transactions.
    let mut profiles: Vec<(usize, usize, TxnProfile)> = Vec::new();
    for (ti, trace) in traces.iter().enumerate() {
        for txn in 0..trace.trace.txns.len() {
            if let Some(p) = profile(trace, txn) {
                profiles.push((ti, txn, p));
            }
        }
    }
    let mut out: Vec<AnomalyCandidate> = Vec::new();
    for (i, (ta, txa, pa)) in profiles.iter().enumerate() {
        for (tb, txb, pb) in profiles.iter().skip(i) {
            let (a_api, b_api) = (traces[*ta].api(), traces[*tb].api());
            // Lost update: both RMW the same table.
            for t in pa.rmw.iter().filter(|t| pb.rmw.contains(t)) {
                out.push(AnomalyCandidate {
                    kind: "lost-update".into(),
                    table: t.clone(),
                    a_api: a_api.into(),
                    a_txn: *txa,
                    b_api: b_api.into(),
                    b_txn: *txb,
                    levels: levels(&WEAK_RMW),
                    detail: format!(
                        "both transactions read-modify-write {t}; a stale read can \
                         silently overwrite the other's committed update"
                    ),
                });
            }
            // Write skew: crossed read/write table dependencies.
            let crossed = |x: &TxnProfile, y: &TxnProfile| -> Option<String> {
                let mut hits: Vec<&String> = x
                    .plain_reads
                    .iter()
                    .filter(|t| y.writes.contains(t))
                    .collect();
                hits.sort();
                hits.first().map(|t| (*t).clone())
            };
            if let (Some(t1), Some(t2)) = (crossed(pa, pb), crossed(pb, pa)) {
                let mut tables = [t1.clone(), t2.clone()];
                tables.sort();
                out.push(AnomalyCandidate {
                    kind: "write-skew".into(),
                    table: tables[0].clone(),
                    a_api: a_api.into(),
                    a_txn: *txa,
                    b_api: b_api.into(),
                    b_txn: *txb,
                    levels: levels(&WEAK_ALL),
                    detail: format!(
                        "each transaction reads a table the other writes \
                         ({t1} / {t2}); disjoint writes can commit a state no \
                         serial order reaches"
                    ),
                });
            }
            // Read fracture: a repeated plain read racing any writer
            // (either direction of the pair).
            let fracture = |reader: &TxnProfile,
                            writer: &TxnProfile,
                            r_api: &str,
                            r_txn: usize,
                            w_api: &str,
                            w_txn: usize,
                            out: &mut Vec<AnomalyCandidate>| {
                for t in reader
                    .repeated_reads
                    .iter()
                    .filter(|t| writer.writes.contains(t))
                {
                    out.push(AnomalyCandidate {
                        kind: "read-fracture".into(),
                        table: t.clone(),
                        a_api: r_api.into(),
                        a_txn: r_txn,
                        b_api: w_api.into(),
                        b_txn: w_txn,
                        levels: levels(&WEAK_RC),
                        detail: format!(
                            "the first transaction reads {t} twice while the \
                             second writes it; per-statement snapshots can \
                             return two different versions"
                        ),
                    });
                }
            };
            fracture(pa, pb, a_api, *txa, b_api, *txb, &mut out);
            if !(ta == tb && txa == txb) {
                fracture(pb, pa, b_api, *txb, a_api, *txa, &mut out);
            }
        }
    }
    out.sort();
    out.dedup();
    weseer_obs::add("analyzer.anomaly.candidates", out.len() as u64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use weseer_concolic::{EngineStats, StackTrace, StmtRecord, Trace, TxnTrace};
    use weseer_smt::Ctx;
    use weseer_sqlir::parser::parse;

    /// A one-transaction trace from raw SQL (no rows or symbolic params —
    /// the oracle only looks at statement shapes).
    fn trace(api: &str, sqls: &[&str], committed: bool) -> CollectedTrace {
        let statements: Vec<StmtRecord> = sqls
            .iter()
            .enumerate()
            .map(|(i, sql)| StmtRecord {
                index: i + 1,
                seq: (i + 1) as u64,
                txn: 0,
                stmt: parse(sql).unwrap(),
                params: vec![],
                rows: vec![],
                is_empty: true,
                trigger: StackTrace::new(),
                sent_at: StackTrace::new(),
            })
            .collect();
        let stmt_indexes = (0..statements.len()).collect();
        CollectedTrace::new(
            Trace {
                api: api.into(),
                statements,
                txns: vec![TxnTrace {
                    id: 0,
                    stmt_indexes,
                    committed,
                }],
                path_conds: vec![],
                unique_ids: vec![],
                stats: EngineStats::default(),
            },
            Ctx::new(),
        )
    }

    const WITHDRAW: &[&str] = &[
        "SELECT * FROM Account a WHERE a.ID = ?",
        "UPDATE Account SET BAL = ? WHERE ID = ?",
    ];

    #[test]
    fn rmw_pair_yields_lost_update_and_write_skew() {
        let traces = vec![trace("Withdraw", WITHDRAW, true)];
        let cands = find_anomaly_candidates(&traces);
        // Self-pair: two concurrent instances of the same endpoint.
        assert!(cands.iter().any(|c| c.kind == "lost-update"
            && c.table == "Account"
            && c.a_api == "Withdraw"
            && c.b_api == "Withdraw"));
        let lu = cands.iter().find(|c| c.kind == "lost-update").unwrap();
        assert_eq!(lu.levels, vec!["read-committed", "repeatable-read"]);
        // Same-table crossed reads are also skew-shaped at table level.
        assert!(cands
            .iter()
            .any(|c| c.kind == "write-skew" && c.levels.contains(&"snapshot".to_string())));
    }

    #[test]
    fn disjoint_tables_and_uncommitted_txns_are_quiet() {
        let a = trace(
            "ReadOnly",
            &["SELECT * FROM Account a WHERE a.ID = ?"],
            true,
        );
        let b = trace("Other", &["UPDATE Inventory SET N = ? WHERE ID = ?"], true);
        assert!(find_anomaly_candidates(&[a, b]).is_empty());
        let rolled_back = trace("Withdraw", WITHDRAW, false);
        assert!(find_anomaly_candidates(&[rolled_back]).is_empty());
    }

    #[test]
    fn repeated_read_vs_writer_yields_read_fracture() {
        let reader = trace(
            "Audit",
            &[
                "SELECT * FROM Account a WHERE a.ID = ?",
                "SELECT * FROM Account a WHERE a.ID = ?",
            ],
            true,
        );
        let writer = trace("Pay", &["UPDATE Account SET BAL = ? WHERE ID = ?"], true);
        let cands = find_anomaly_candidates(&[reader, writer]);
        let rf = cands.iter().find(|c| c.kind == "read-fracture").unwrap();
        assert_eq!(rf.a_api, "Audit");
        assert_eq!(rf.b_api, "Pay");
        assert_eq!(rf.levels, vec!["read-committed"]);
    }

    #[test]
    fn select_for_update_is_a_current_read_not_a_candidate() {
        // FOR UPDATE keeps 2PL locks at every level: no snapshot staleness.
        let t = trace(
            "Safe",
            &[
                "SELECT * FROM Account a WHERE a.ID = ? FOR UPDATE",
                "UPDATE Account SET BAL = ? WHERE ID = ?",
            ],
            true,
        );
        assert!(find_anomaly_candidates(&[t]).is_empty());
    }

    #[test]
    fn output_is_sorted_and_json_is_stable() {
        let traces = vec![trace("Withdraw", WITHDRAW, true)];
        let a = find_anomaly_candidates(&traces);
        let b = find_anomaly_candidates(&traces);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort();
        assert_eq!(a, sorted);
        let j = a[0].to_json();
        assert!(j.starts_with("{\"kind\":\""));
        assert!(j.contains("\"levels\":["));
        assert!(!a[0].signature().is_empty());
    }
}

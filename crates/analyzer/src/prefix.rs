//! Tier 2 of the tiered solving pipeline: shared path-condition prefixes.
//!
//! Many cycles of one transaction conjoin the *same* path-condition
//! prefix — every fine-grained query for a cycle of transaction `t`
//! includes the conditions recorded before `t`'s waiting statement. This
//! module pre-processes each trace once per analysis run:
//!
//! * every path condition is tier-0 simplified **once** (per trace, with
//!   a shared hash-consing memo) into a cloned context, so per-pair
//!   solving imports pre-simplified conjuncts instead of re-simplifying
//!   the same terms for every cycle;
//! * each transaction's standalone prefix — the conditions recorded
//!   before its earliest possible waiting statement, i.e. the subset
//!   conjoined into *every* fine-grained query of that transaction — is
//!   pre-solved with the tier-1 abstract pre-solver. A definite-UNSAT
//!   prefix makes every such query UNSAT, so all the transaction's pairs
//!   and cycles are killed before the fine phase renders a single lock
//!   conflict ([`crate::pairs::prune_unsat_prefixes`]).
//!
//! Soundness of the kill: the pruned prefix is *implied by* (a subformula
//! of) every formula the fine phase would have built for that
//! transaction, so UNSAT here means the solver verdict for each killed
//! cycle would have been UNSAT — only the cost changes, never the report
//! set. Cross-checked against the full solver under `debug_assertions`.
//!
//! In incremental mode (`TierConfig::incremental`) the pre-simplified
//! conjuncts pay off twice: the per-pair session imports each one into
//! its shared context once, and the pair's persistent
//! [`weseer_smt::IncrementalSolver`] lowers it to CNF once — later
//! cycles of the pair find the conjunct's Tseitin literal already in the
//! clause database and assert only their per-cycle delta on top, under a
//! single assumption literal.

use crate::diagnose::{CollectedTrace, StoreCtx};
use std::collections::HashSet;
use std::time::Instant;
use weseer_smt::{presolve, Ctx, PresolveResult, Simplifier, SolverConfig, TermId};
use weseer_store::{json::Json, Lookup};

/// Per-trace prefix data: a context clone holding the simplified
/// path-condition terms.
pub(crate) struct TracePrefix {
    /// Clone of the trace's context with simplified terms interned.
    pub ctx: Ctx,
    /// Simplified terms, parallel to `trace.path_conds`.
    pub simplified: Vec<TermId>,
    /// Transactions whose standalone prefix is definitely UNSAT.
    unsat_txns: HashSet<usize>,
}

/// Pre-solved path-condition prefixes for every trace, built once per
/// analysis run (sequentially — the table is part of the deterministic
/// pipeline setup).
pub struct PrefixTable {
    per_trace: Vec<TracePrefix>,
}

impl PrefixTable {
    /// Simplify every path condition and pre-solve every transaction's
    /// standalone prefix. Records `smt.fastpath.prefix_us` per prefix
    /// pre-solve in the global metrics registry.
    pub fn build(traces: &[CollectedTrace], config: &SolverConfig) -> PrefixTable {
        PrefixTable::build_with_store(traces, config, None)
    }

    /// [`PrefixTable::build`] consulting a persistent store: the tier-0
    /// simplification always runs live (the fine phase imports the
    /// simplified terms), but a stored prefix verdict skips the tier-1
    /// pre-solve *and* the `debug_assertions` full-solver cross-check —
    /// which is what lets a warm debug-build run report zero full solves.
    pub(crate) fn build_with_store(
        traces: &[CollectedTrace],
        config: &SolverConfig,
        store: Option<&StoreCtx<'_>>,
    ) -> PrefixTable {
        let solver_tag = format!("solver={config:?}");
        let per_trace = traces
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let mut ctx = t.ctx.clone();
                let mut simp = Simplifier::new();
                let simplified: Vec<TermId> = t
                    .trace
                    .path_conds
                    .iter()
                    .map(|pc| simp.simplify(&mut ctx, pc.term))
                    .collect();
                let mut unsat_txns = HashSet::new();
                for txn in 0..t.trace.txns.len() {
                    let stmts = t.trace.statements_of(txn);
                    // A cycle needs a held and a later waiting statement,
                    // so the earliest wait is the transaction's second
                    // statement; conditions before it are in every query.
                    let Some(first_wait) = stmts.get(1) else {
                        continue;
                    };
                    let parts: Vec<TermId> = t
                        .trace
                        .path_conds
                        .iter()
                        .zip(&simplified)
                        .filter(|(pc, _)| pc.seq < first_wait.seq)
                        .map(|(_, &s)| s)
                        .collect();
                    if parts.is_empty() {
                        continue;
                    }
                    let persist = store.map(|sc| {
                        (
                            sc,
                            format!("{}|{}:{}#{}", sc.namespace, i, t.trace.api, txn),
                            format!("{}|{}", sc.fingerprints[i], solver_tag),
                        )
                    });
                    if let Some((sc, site, content)) = &persist {
                        if let Lookup::Hit(v) = sc.store.get("prefix", site, content) {
                            if let Some(unsat) = v.get("unsat").and_then(Json::as_bool) {
                                if unsat {
                                    unsat_txns.insert(txn);
                                }
                                continue;
                            }
                        }
                    }
                    let conj = ctx.and(parts);
                    let start = Instant::now();
                    let unsat = matches!(presolve(&ctx, conj), PresolveResult::Unsat);
                    weseer_obs::observe_duration("smt.fastpath.prefix_us", start.elapsed());
                    if unsat {
                        #[cfg(debug_assertions)]
                        {
                            let full = weseer_smt::check(&mut ctx, conj, config);
                            debug_assert!(
                                !full.is_sat(),
                                "prefix pre-solve claimed UNSAT for a satisfiable prefix"
                            );
                        }
                        unsat_txns.insert(txn);
                    }
                    if let Some((sc, site, content)) = &persist {
                        let value = Json::Obj(vec![("unsat".into(), Json::Bool(unsat))]);
                        sc.store.put("prefix", site, content, value);
                    }
                }
                TracePrefix {
                    ctx,
                    simplified,
                    unsat_txns,
                }
            })
            .collect();
        PrefixTable { per_trace }
    }

    /// Whether `txn` of trace `trace` has a definitely-UNSAT standalone
    /// prefix (all its pairs can be killed).
    pub fn prefix_unsat(&self, trace: usize, txn: usize) -> bool {
        self.per_trace[trace].unsat_txns.contains(&txn)
    }

    /// The per-trace prefix data (context + simplified conjuncts).
    pub(crate) fn trace(&self, i: usize) -> &TracePrefix {
        &self.per_trace[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnose::CollectedTrace;
    use weseer_concolic::{PathCond, StackTrace, StmtRecord, Trace, TxnTrace};
    use weseer_smt::Sort;
    use weseer_sqlir::parser::parse;

    fn stmt(index: usize, seq: u64, txn: usize, sql: &str) -> StmtRecord {
        StmtRecord {
            index,
            seq,
            txn,
            stmt: parse(sql).unwrap(),
            params: Vec::new(),
            rows: Vec::new(),
            is_empty: false,
            trigger: StackTrace::default(),
            sent_at: StackTrace::default(),
        }
    }

    fn two_stmt_trace(ctx: &mut Ctx, contradictory: bool) -> Trace {
        let x = ctx.var("x", Sort::Int);
        let two = ctx.int(2);
        let three = ctx.int(3);
        let lo = ctx.gt(x, two);
        let ten = ctx.int(10);
        let hi = if contradictory {
            ctx.lt(x, three) // x > 2 ∧ x < 3 over Int: UNSAT
        } else {
            ctx.lt(x, ten)
        };
        Trace {
            api: "api".into(),
            statements: vec![
                stmt(1, 10, 0, "UPDATE t SET a = 1 WHERE id = 1"),
                stmt(2, 20, 0, "UPDATE t SET a = 2 WHERE id = 2"),
            ],
            txns: vec![TxnTrace {
                id: 0,
                stmt_indexes: vec![0, 1],
                committed: true,
            }],
            path_conds: vec![
                PathCond {
                    term: lo,
                    seq: 5,
                    stack: StackTrace::default(),
                    in_library: false,
                },
                PathCond {
                    term: hi,
                    seq: 6,
                    stack: StackTrace::default(),
                    in_library: false,
                },
            ],
            unique_ids: Vec::new(),
            stats: Default::default(),
        }
    }

    #[test]
    fn contradictory_prefix_is_flagged() {
        let mut ctx = Ctx::new();
        let trace = two_stmt_trace(&mut ctx, true);
        let collected = vec![CollectedTrace::new(trace, ctx)];
        let table = PrefixTable::build(&collected, &SolverConfig::default());
        assert!(table.prefix_unsat(0, 0));
    }

    #[test]
    fn satisfiable_prefix_is_kept_and_simplified() {
        let mut ctx = Ctx::new();
        let trace = two_stmt_trace(&mut ctx, false);
        let collected = vec![CollectedTrace::new(trace, ctx)];
        let table = PrefixTable::build(&collected, &SolverConfig::default());
        assert!(!table.prefix_unsat(0, 0));
        assert_eq!(table.trace(0).simplified.len(), 2);
    }
}

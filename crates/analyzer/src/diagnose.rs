//! The three-phase deadlock diagnosis (paper Sec. V-B, Fig. 5), staged as
//! a deterministic parallel pipeline.
//!
//! Every collected trace is analyzed as **two concurrent instances** of the
//! same API (and against every other trace), mirroring the paper's setup.
//!
//! * **Transaction-level phase** — [`crate::pairs::generate_pairs`] builds
//!   the table-level conflict graph once and yields only transaction pairs
//!   that write a commonly accessed table (conflict-cycle filter);
//! * **Coarse-grained phase** — [`scan_pair`] enumerates SC-graph deadlock
//!   cycles per pair: A holds the lock of an earlier statement that
//!   conflicts with B's later statement and vice versa (table-level
//!   C-edges);
//! * **Fine-grained phase** — [`fine_check`] models locks (Alg. 2),
//!   requires a potentially conflicting lock pair per C-edge, generates
//!   conflict conditions (Alg. 3), conjoins with both instances' path
//!   conditions up to the waiting statements, and asks the SMT solver
//!   (through the cross-pair verdict cache). SAT ⇒ deadlock reported with
//!   a witness model.
//!
//! ## Determinism under parallelism
//!
//! Phases 2 and 3 are *pure* per-unit functions — `(job, &PairCtx) ->
//! outcome` with no `&mut` threading — fanned out by
//! [`crate::schedule::run_ordered`] and reduced sequentially in canonical
//! pair order. The cross-pair `seen` dedup (which decides what reaches the
//! solver) and the `max_reports` truncation run only in those ordered
//! sweeps, and the SMT verdict cache returns answers that are pure
//! functions of the canonicalized formula, so reports and funnel counters
//! are bit-identical for any `threads` setting.

use crate::encode::{gen_conflict_cond, Importer, Side};
use crate::indexes::IndexOracle;
use crate::locks::{gen_exclusive_locks, gen_shared_locks, potential_conflict};
use crate::pairs::{generate_pairs, prune_unsat_prefixes, txn_tables, PairJob};
use crate::prefix::PrefixTable;
use crate::report::{CycleId, DeadlockReport, ReportedStatement};
use crate::schedule::{resolve_threads, run_ordered, run_sharded};
use std::collections::HashSet;
use std::time::{Duration, Instant};
use weseer_concolic::{StmtRecord, Trace};
use weseer_smt::{
    check_tiered, Ctx, IncrementalSolver, Model, SolveResult, SolverConfig, TermId, VerdictCache,
};
use weseer_sqlir::Catalog;
use weseer_store::{codec, json::Json, site_hash, Lookup, Store};

/// Version tag of the fine-grained lock model (Alg. 2/3 as implemented).
/// Mixed into every persisted pair verdict's content key; bump it whenever
/// lock generation or conflict-condition encoding changes semantics, and
/// every stored phase-2/3 outcome goes stale at once.
pub const LOCK_MODEL_VERSION: &str = "lock-model-v1";

/// Persistence context for incremental analysis: an open [`Store`] plus
/// one content fingerprint per trace (`fingerprints[i]` describes
/// `traces[i]`; see `Trace::fingerprint`). A pair's stored outcome is
/// reused only while both fingerprints — and the analyzer/solver
/// configuration — are unchanged.
pub struct StoreCtx<'a> {
    /// The open store.
    pub store: &'a Store,
    /// Content fingerprint per trace, parallel to the trace slice.
    pub fingerprints: &'a [String],
    /// Namespace prefixed onto every per-trace and per-pair site
    /// (typically the application name). Different applications reuse
    /// trace indices and API names — Broadleaf and Shopizer both have a
    /// trace 0 called `Register` — so un-namespaced sites would collide
    /// in a shared store and ping-pong between the two apps'
    /// fingerprints on every run. SMT entries are exempt: they are
    /// keyed by canonical formula content, which is sound to share
    /// across applications.
    pub namespace: &'a str,
}

/// A trace together with the term context of the engine that produced it.
pub struct CollectedTrace {
    /// The runtime trace.
    pub trace: Trace,
    /// Term context holding the trace's symbolic expressions.
    pub ctx: Ctx,
}

impl CollectedTrace {
    /// Wrap a trace and its context.
    pub fn new(trace: Trace, ctx: Ctx) -> Self {
        CollectedTrace { trace, ctx }
    }

    /// The traced API name.
    pub fn api(&self) -> &str {
        &self.trace.api
    }
}

/// Analyzer configuration.
#[derive(Debug, Clone)]
pub struct AnalyzerConfig {
    /// SMT solver limits.
    pub solver: SolverConfig,
    /// Run the fine-grained phase (false = the STEPDAD/REDACT-style coarse
    /// baseline that reports every coarse cycle).
    pub fine_grained: bool,
    /// Model range locks in conflict conditions (Alg. 3 lines 10–13).
    pub use_range_locks: bool,
    /// Skip the first two (filtering) phases and send every coarse cycle
    /// candidate straight to the SMT solver — the brute-force baseline of
    /// Sec. V-B, used by the ablation bench.
    pub skip_filter_phases: bool,
    /// Stop after this many confirmed reports.
    pub max_reports: usize,
    /// Worker threads for the pair scans and fine-grained checks. `0`
    /// (default) = auto: `WESEER_THREADS` if set, else
    /// `available_parallelism`. `1` runs everything inline on the calling
    /// thread. Output is identical for every setting.
    pub threads: usize,
    /// Memoize SMT verdicts across pairs keyed by the canonicalized
    /// formula (traces from the same API template re-discharge
    /// near-identical queries).
    pub smt_cache: bool,
}

impl Default for AnalyzerConfig {
    fn default() -> Self {
        AnalyzerConfig {
            solver: SolverConfig::default(),
            fine_grained: true,
            use_range_locks: true,
            skip_filter_phases: false,
            max_reports: 10_000,
            threads: 0,
            smt_cache: true,
        }
    }
}

/// Diagnosis-wide counters and per-phase wall times.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiagnosisStats {
    /// Transaction pairs examined.
    pub txn_pairs: usize,
    /// Pairs surviving the transaction-level phase.
    pub pairs_after_phase1: usize,
    /// Coarse-grained deadlock cycles found (phase 2).
    pub coarse_cycles: usize,
    /// Pairs killed by the tier-2 prefix pre-solve (a side's standalone
    /// path-condition prefix was already UNSAT).
    pub prefix_kills: usize,
    /// Cycles whose C-edges had potentially conflicting locks (entering
    /// SMT).
    pub fine_candidates: usize,
    /// SMT SAT / UNSAT / Unknown outcomes.
    pub smt_sat: usize,
    /// SMT UNSAT outcomes.
    pub smt_unsat: usize,
    /// SMT timeouts.
    pub smt_unknown: usize,
    /// Wall time spent generating the phase-1 pair set.
    pub phase1_time: Duration,
    /// CPU time summed over the per-pair coarse cycle scans (phase 2).
    pub phase2_time: Duration,
    /// CPU time summed over fine-grained lock modeling + SMT (phase 3).
    pub phase3_time: Duration,
}

impl DiagnosisStats {
    /// Publish the funnel counters and phase timings to the global
    /// [`weseer_obs`] registry (no-op while observability is disabled).
    pub fn publish(&self) {
        weseer_obs::add("analyzer.txn_pairs", self.txn_pairs as u64);
        weseer_obs::add(
            "analyzer.pairs_after_phase1",
            self.pairs_after_phase1 as u64,
        );
        weseer_obs::add(
            "analyzer.pairs_pruned",
            self.txn_pairs.saturating_sub(self.pairs_after_phase1) as u64,
        );
        weseer_obs::add("smt.fastpath.prefix_kill", self.prefix_kills as u64);
        weseer_obs::add("analyzer.coarse_cycles", self.coarse_cycles as u64);
        weseer_obs::add("analyzer.fine_candidates", self.fine_candidates as u64);
        weseer_obs::add("analyzer.smt_sat", self.smt_sat as u64);
        weseer_obs::add("analyzer.smt_unsat", self.smt_unsat as u64);
        weseer_obs::add("analyzer.smt_unknown", self.smt_unknown as u64);
        weseer_obs::add("analyzer.phase1_us", self.phase1_time.as_micros() as u64);
        weseer_obs::add("analyzer.phase2_us", self.phase2_time.as_micros() as u64);
        weseer_obs::add("analyzer.phase3_us", self.phase3_time.as_micros() as u64);
    }
}

/// The result of a diagnosis run.
#[derive(Debug)]
pub struct Diagnosis {
    /// Confirmed deadlocks.
    pub deadlocks: Vec<DeadlockReport>,
    /// Counters.
    pub stats: DiagnosisStats,
}

/// Run WeSEER's deadlock analysis over a set of collected traces.
pub fn diagnose(
    catalog: &Catalog,
    traces: &[CollectedTrace],
    config: &AnalyzerConfig,
) -> Diagnosis {
    diagnose_with_oracle(catalog, traces, config, None)
}

/// Like [`diagnose`], but consulting a concrete-plan oracle (`EXPLAIN`)
/// so lock modeling only considers the index the database would actually
/// use — the paper's Sec. V-D future work for cutting false positives.
pub fn diagnose_with_oracle(
    catalog: &Catalog,
    traces: &[CollectedTrace],
    config: &AnalyzerConfig,
    oracle: Option<&dyn IndexOracle>,
) -> Diagnosis {
    diagnose_incremental(catalog, traces, config, oracle, None)
}

/// Like [`diagnose_with_oracle`], but consulting (and feeding) a
/// persistent [`Store`] so a warm run over unchanged traces reuses every
/// phase-2 scan, phase-3 verdict, prefix pre-solve, and SMT verdict from
/// the previous run. Phases 1–2's pair generation and the cross-pair
/// dedup sweep always run live (they are cheap and keep the funnel
/// counters exact); stored outcomes replay the heavy work with the
/// *original* measured wall times, so a warm diagnosis is byte-identical
/// to the cold one that filled the store.
pub fn diagnose_incremental(
    catalog: &Catalog,
    traces: &[CollectedTrace],
    config: &AnalyzerConfig,
    oracle: Option<&dyn IndexOracle>,
    store: Option<&StoreCtx<'_>>,
) -> Diagnosis {
    let _span = weseer_obs::span("analyzer.diagnose");
    if let Some(sc) = store {
        assert_eq!(
            sc.fingerprints.len(),
            traces.len(),
            "one fingerprint per trace"
        );
    }
    let diagnosis = run_pipeline(
        catalog,
        traces,
        config,
        oracle,
        store,
        Exec::Pool,
        &mut None,
    );
    diagnosis.stats.publish();
    weseer_obs::add(
        "analyzer.deadlocks_reported",
        diagnosis.deadlocks.len() as u64,
    );
    diagnosis
}

/// Like [`diagnose_incremental`], but fanning the parallel phases out over
/// `shards` table-keyed worker shards
/// ([`run_sharded`](crate::schedule::run_sharded)) and emitting each
/// confirmed report to `on_report` *while phase 3 is still running* — as
/// soon as the completed prefix of the canonical cycle order reaches it.
/// This is the serving plane's entry point: a daemon streams verdicts to
/// the submitting client without waiting for the slowest shard.
///
/// Every pair (and every cycle group) is routed by [`pair_shard_key`] —
/// the pair's smallest conflict table — so all work touching one entity
/// lands on one shard and warm store entries written by that shard stay
/// shard-local. Determinism is untouched: shard assignment only decides
/// *where* a pure function runs, and both the report vector and the
/// `on_report` sequence follow the canonical input order, so the result
/// is byte-identical to [`diagnose_incremental`] at any shard count.
pub fn diagnose_streaming(
    catalog: &Catalog,
    traces: &[CollectedTrace],
    config: &AnalyzerConfig,
    oracle: Option<&dyn IndexOracle>,
    store: Option<&StoreCtx<'_>>,
    shards: usize,
    on_report: &mut dyn FnMut(&DeadlockReport),
) -> Diagnosis {
    let _span = weseer_obs::span("analyzer.diagnose");
    if let Some(sc) = store {
        assert_eq!(
            sc.fingerprints.len(),
            traces.len(),
            "one fingerprint per trace"
        );
    }
    let diagnosis = run_pipeline(
        catalog,
        traces,
        config,
        oracle,
        store,
        Exec::Shard(shards),
        &mut Some(on_report),
    );
    diagnosis.stats.publish();
    weseer_obs::add(
        "analyzer.deadlocks_reported",
        diagnosis.deadlocks.len() as u64,
    );
    diagnosis
}

/// Count coarse-grained deadlock cycles only (the STEPDAD/REDACT baseline
/// of Sec. VII-B, which reports 18,384 hold-and-wait cycles on the paper's
/// workload). No lock modeling, no SMT, and — unlike [`diagnose`] — no
/// funnel counters published.
pub fn coarse_cycle_count(traces: &[CollectedTrace]) -> usize {
    let config = AnalyzerConfig {
        fine_grained: false,
        max_reports: usize::MAX,
        ..AnalyzerConfig::default()
    };
    run_pipeline(
        &Catalog::default(),
        traces,
        &config,
        None,
        None,
        Exec::Pool,
        &mut None,
    )
    .stats
    .coarse_cycles
}

/// How the parallel phases fan out.
#[derive(Debug, Clone, Copy)]
enum Exec {
    /// The batch pool: work-stealing chunks over the configured thread
    /// count ([`run_ordered`]).
    Pool,
    /// The serving plane: bounded per-shard queues keyed by the pair's
    /// conflict table ([`run_sharded`]).
    Shard(usize),
}

impl Exec {
    /// Run `f` over `items`, surfacing each result to `on_ready` in input
    /// order. The pool path computes everything first and then sweeps —
    /// same `on_ready` sequence, no streaming; the shard path streams the
    /// completed prefix while later items are still in flight.
    fn run<I, O>(
        self,
        items: &[I],
        threads: usize,
        key: impl Fn(usize, &I) -> u64 + Sync,
        f: impl Fn(usize, &I) -> O + Sync,
        mut on_ready: impl FnMut(usize, &O),
    ) -> Vec<O>
    where
        I: Sync,
        O: Send,
    {
        match self {
            Exec::Pool => {
                let out = run_ordered(items, threads, f);
                for (i, o) in out.iter().enumerate() {
                    on_ready(i, o);
                }
                out
            }
            Exec::Shard(shards) => run_sharded(items, shards, key, f, on_ready),
        }
    }
}

/// The entity/table shard key of a transaction pair: an FNV-1a hash of
/// the smallest table both transactions access with at least one write —
/// the same predicate phase 1's conflict filter selects pairs by, so
/// every surviving pair has one. (Brute-force configs that skip the
/// filter fall back to hashing the pair's trace coordinates.) Keying by
/// conflict table sends all contention on one entity to one shard;
/// hashing the *name* keeps the mapping stable across runs and shard
/// counts, which is what makes warm-store sites shard-local.
pub fn pair_shard_key(traces: &[CollectedTrace], job: &PairJob) -> u64 {
    let (acc_a, wr_a) = txn_tables(&traces[job.a].trace, job.a_txn);
    let (acc_b, wr_b) = txn_tables(&traces[job.b].trace, job.b_txn);
    let mut conflict: Option<&String> = None;
    for t in &acc_a {
        if !acc_b.contains(t) || !(wr_a.contains(t) || wr_b.contains(t)) {
            continue;
        }
        match conflict {
            Some(best) if best <= t => {}
            _ => conflict = Some(t),
        }
    }
    match conflict {
        Some(table) => fnv1a(table.as_bytes()),
        None => fnv1a(format!("{}:{}|{}:{}", job.a, job.a_txn, job.b, job.b_txn).as_bytes()),
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Shared read-only context for the pure per-pair functions.
pub(crate) struct PairCtx<'a> {
    catalog: &'a Catalog,
    traces: &'a [CollectedTrace],
    config: &'a AnalyzerConfig,
    oracle: Option<&'a dyn IndexOracle>,
    /// Present iff `config.smt_cache` and the solver is not incremental.
    /// In incremental mode every formula goes to the pair's persistent
    /// solver instead: a cache hit would skip a query and thereby change
    /// the solver's clause database relative to a cold run, making
    /// verdict bytes depend on cross-pair cache traffic (and thus on
    /// thread scheduling). Within a pair the persistent solver already
    /// provides what the cache bought — shared work across near-identical
    /// formulas — at finer granularity (shared clauses, not just whole
    /// canonicalized formulas).
    cache: Option<VerdictCache>,
    /// Tier-2 prefix table (present iff `config.solver.tiers.prefix` and
    /// the fine phase runs): per-trace pre-simplified path conditions.
    prefix: Option<PrefixTable>,
    /// SQL text per trace statement, rendered once (indexed by trace, then
    /// `StmtRecord::index - 1`) — cycle signatures are built in the hot
    /// loop and must not re-render templates per pair.
    stmt_sql: Vec<Vec<String>>,
    /// Incremental persistence, when the caller opened a store.
    store: Option<&'a StoreCtx<'a>>,
    /// Analyzer-level content tag mixed into every stored pair outcome:
    /// lock-model version + the config knobs that change verdicts.
    cfg_tag: String,
}

impl<'a> PairCtx<'a> {
    fn new(
        catalog: &'a Catalog,
        traces: &'a [CollectedTrace],
        config: &'a AnalyzerConfig,
        oracle: Option<&'a dyn IndexOracle>,
        prefix: Option<PrefixTable>,
        store: Option<&'a StoreCtx<'a>>,
    ) -> Self {
        let stmt_sql = traces
            .iter()
            .map(|t| {
                let mut sql = vec![String::new(); t.trace.statements.len()];
                for rec in &t.trace.statements {
                    sql[rec.index - 1] = rec.stmt.to_string();
                }
                sql
            })
            .collect();
        PairCtx {
            catalog,
            traces,
            config,
            oracle,
            cache: (config.smt_cache && !config.solver.tiers.incremental).then(VerdictCache::new),
            prefix,
            stmt_sql,
            store,
            cfg_tag: analyzer_tag(config),
        }
    }

    fn sql(&self, trace: usize, rec: &StmtRecord) -> &str {
        &self.stmt_sql[trace][rec.index - 1]
    }

    /// Stable *site* of a pair — where its stored outcomes live,
    /// independent of the traces' contents. Namespaced by application so
    /// apps with identically named traces don't overwrite each other's
    /// entries in a shared store.
    fn pair_site(&self, job: &PairJob) -> String {
        let ns = self.store.map(|sc| sc.namespace).unwrap_or("");
        format!(
            "{ns}|{}:{}#{}|{}:{}#{}",
            job.a,
            self.traces[job.a].api(),
            job.a_txn,
            job.b,
            self.traces[job.b].api(),
            job.b_txn
        )
    }

    /// Content key of a pair: both trace fingerprints + the config tag.
    fn pair_content(&self, sc: &StoreCtx<'_>, job: &PairJob) -> String {
        format!(
            "{}|{}|{}",
            sc.fingerprints[job.a], sc.fingerprints[job.b], self.cfg_tag
        )
    }
}

/// The analyzer configuration knobs that can change a pair's verdict or
/// report (deliberately excludes `max_reports`, `threads`, and
/// `smt_cache`, which only affect scheduling and truncation).
fn analyzer_tag(config: &AnalyzerConfig) -> String {
    format!(
        "{LOCK_MODEL_VERSION}|fine={}|range={}|skip={}|solver={:?}",
        config.fine_grained, config.use_range_locks, config.skip_filter_phases, config.solver
    )
}

/// One coarse SC-graph cycle found by [`scan_pair`], identified by the
/// positions of its four statements within the pair's transactions.
#[derive(Debug, Clone)]
pub(crate) struct CycleCandidate {
    /// Positions into `statements_of(a_txn)` / `statements_of(b_txn)`.
    ah: usize,
    aw: usize,
    bh: usize,
    bw: usize,
    /// C-edge tables: `t1` for a_hold↔b_wait, `t2` for b_hold↔a_wait.
    t1: Vec<String>,
    t2: Vec<String>,
}

/// Everything phase 2 produces for one pair.
pub(crate) struct PairOutcome {
    /// Coarse cycles counted (equals `cycles.len()` when candidates are
    /// collected; still counted when `fine_grained` is off).
    coarse_cycles: usize,
    /// Cycle candidates for the fine-grained phase, in scan order.
    cycles: Vec<CycleCandidate>,
    /// Wall time of this scan (summed into `phase2_time`).
    scan_time: Duration,
}

/// Phase 2, pure: enumerate the pair's coarse SC-graph deadlock cycles.
pub(crate) fn scan_pair(job: &PairJob, ctx: &PairCtx<'_>) -> PairOutcome {
    let start = Instant::now();
    let a = &ctx.traces[job.a];
    let b = &ctx.traces[job.b];
    let same_instance = job.same_instance();
    let mut out = PairOutcome {
        coarse_cycles: 0,
        cycles: Vec::new(),
        scan_time: Duration::ZERO,
    };
    let stmts_a = a.trace.statements_of(job.a_txn);
    let stmts_b = b.trace.statements_of(job.b_txn);
    for (ah, a_hold) in stmts_a.iter().enumerate() {
        for (awo, a_wait) in stmts_a.iter().enumerate().skip(ah + 1) {
            for (bh, b_hold) in stmts_b.iter().enumerate() {
                for (bwo, b_wait) in stmts_b.iter().enumerate().skip(bh + 1) {
                    if same_instance && (b_hold.index, b_wait.index) < (a_hold.index, a_wait.index)
                    {
                        continue; // symmetric duplicate
                    }
                    // C-edges at table granularity (unless brute force).
                    let t1 = conflict_tables(a_hold, b_wait);
                    let t2 = conflict_tables(b_hold, a_wait);
                    if !ctx.config.skip_filter_phases && (t1.is_empty() || t2.is_empty()) {
                        continue;
                    }
                    out.coarse_cycles += 1;
                    if ctx.config.fine_grained {
                        out.cycles.push(CycleCandidate {
                            ah,
                            aw: awo,
                            bh,
                            bw: bwo,
                            t1,
                            t2,
                        });
                    }
                }
            }
        }
    }
    out.scan_time = start.elapsed();
    out
}

/// [`scan_pair`] behind the store: a hit replays the recorded scan
/// (including its original wall time, so warm funnels match cold ones);
/// a miss or stale scans live and records the outcome.
pub(crate) fn scan_pair_cached(job: &PairJob, ctx: &PairCtx<'_>) -> PairOutcome {
    let Some(sc) = ctx.store else {
        return scan_pair(job, ctx);
    };
    let site = ctx.pair_site(job);
    let content = ctx.pair_content(sc, job);
    if let Lookup::Hit(v) = sc.store.get("pair2", &site, &content) {
        if let Some(out) = pair2_from_json(&v) {
            return out;
        }
    }
    let out = scan_pair(job, ctx);
    sc.store.put("pair2", &site, &content, pair2_to_json(&out));
    out
}

fn pair2_to_json(out: &PairOutcome) -> Json {
    let cycles: Vec<Json> = out
        .cycles
        .iter()
        .map(|c| {
            Json::Arr(vec![
                Json::u64(c.ah as u64),
                Json::u64(c.aw as u64),
                Json::u64(c.bh as u64),
                Json::u64(c.bw as u64),
                Json::Arr(c.t1.iter().map(Json::str).collect()),
                Json::Arr(c.t2.iter().map(Json::str).collect()),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("coarse".into(), Json::u64(out.coarse_cycles as u64)),
        ("us".into(), Json::u64(out.scan_time.as_micros() as u64)),
        ("cycles".into(), Json::Arr(cycles)),
    ])
}

fn pair2_from_json(v: &Json) -> Option<PairOutcome> {
    let strings = |j: &Json| -> Option<Vec<String>> {
        j.as_arr()?
            .iter()
            .map(|s| s.as_str().map(str::to_string))
            .collect()
    };
    let mut cycles = Vec::new();
    for c in v.get("cycles")?.as_arr()? {
        let c = c.as_arr()?;
        cycles.push(CycleCandidate {
            ah: c.first()?.as_u64()? as usize,
            aw: c.get(1)?.as_u64()? as usize,
            bh: c.get(2)?.as_u64()? as usize,
            bw: c.get(3)?.as_u64()? as usize,
            t1: strings(c.get(4)?)?,
            t2: strings(c.get(5)?)?,
        });
    }
    Some(PairOutcome {
        coarse_cycles: v.get("coarse")?.as_u64()? as usize,
        cycles,
        scan_time: Duration::from_micros(v.get("us")?.as_u64()?),
    })
}

/// A deduplicated cycle heading into the fine-grained phase.
pub(crate) struct FineJob {
    pair: PairJob,
    cand: CycleCandidate,
}

enum FineVerdict {
    /// No potentially conflicting lock pair on some C-edge — not a fine
    /// candidate, nothing dispatched to the solver.
    NoCandidate,
    Sat(Box<DeadlockReport>),
    Unsat,
    Unknown,
}

pub(crate) struct FineOutcome {
    verdict: FineVerdict,
    /// Wall time of this check (summed into `phase3_time`).
    time: Duration,
}

/// Shared fine-phase state for one transaction pair: the destination
/// context every cycle formula is built in, the term importers for the
/// two instances (whose memo tables make re-imports of the shared path
/// conditions and lock variables free), and — in incremental mode — the
/// persistent assumption-based solver carrying Tseitin clauses,
/// select-congruence axioms, theory blocking clauses, and learned
/// clauses across the pair's cycles.
///
/// A session never outlives its pair. Sharing a solver across pairs
/// would make a verdict depend on which pairs a worker thread happened
/// to solve earlier, breaking the byte-identical-at-any-thread-count
/// guarantee; per-pair sessions keep cycle order (and therefore solver
/// state) canonical regardless of scheduling.
struct PairSession<'a> {
    dst: Ctx,
    imp_a: Importer<'a>,
    imp_b: Importer<'a>,
    /// Importers for the prefix table's pre-simplified conjuncts
    /// (present iff [`PairCtx::prefix`] is).
    pre_a: Option<Importer<'a>>,
    pre_b: Option<Importer<'a>>,
    /// Present iff `config.solver.tiers.incremental`: the pair's
    /// persistent solver. `None` falls back to a fresh tiered solve (or
    /// the verdict cache) per cycle.
    solver: Option<IncrementalSolver>,
}

impl<'a> PairSession<'a> {
    fn new(pair: &PairJob, ctx: &'a PairCtx<'_>) -> PairSession<'a> {
        let a = &ctx.traces[pair.a];
        let b = &ctx.traces[pair.b];
        let (pre_a, pre_b) = match &ctx.prefix {
            Some(table) => (
                Some(Importer::new(&table.trace(pair.a).ctx, "A1.")),
                Some(Importer::new(&table.trace(pair.b).ctx, "A2.")),
            ),
            None => (None, None),
        };
        PairSession {
            dst: Ctx::new(),
            imp_a: Importer::new(&a.ctx, "A1."),
            imp_b: Importer::new(&b.ctx, "A2."),
            pre_a,
            pre_b,
            solver: ctx
                .config
                .solver
                .tiers
                .incremental
                .then(|| IncrementalSolver::new(ctx.config.solver.clone())),
        }
    }
}

/// Phase 3, pure: lock modeling + conflict conditions + SMT for one cycle.
/// Non-incremental path: a fresh [`PairSession`] per cycle reproduces the
/// historical one-context-per-formula behavior exactly.
pub(crate) fn fine_check(job: &FineJob, ctx: &PairCtx<'_>) -> FineOutcome {
    let start = Instant::now();
    let mut sess = PairSession::new(&job.pair, ctx);
    let verdict = fine_check_inner(job, ctx, &mut sess);
    FineOutcome {
        verdict,
        time: start.elapsed(),
    }
}

fn fine_check_inner(job: &FineJob, ctx: &PairCtx<'_>, sess: &mut PairSession<'_>) -> FineVerdict {
    let pair = &job.pair;
    let cand = &job.cand;
    let a = &ctx.traces[pair.a];
    let b = &ctx.traces[pair.b];
    let stmts_a = a.trace.statements_of(pair.a_txn);
    let stmts_b = b.trace.statements_of(pair.b_txn);
    let (a_hold, a_wait) = (stmts_a[cand.ah], stmts_a[cand.aw]);
    let (b_hold, b_wait) = (stmts_b[cand.bh], stmts_b[cand.bw]);
    let config = ctx.config;
    let dst = &mut sess.dst;

    // Edge 1: A's held lock (a_hold) blocks B's waiter (b_wait).
    let e1 = edge_condition(
        dst,
        ctx.catalog,
        a_hold,
        &mut sess.imp_a,
        b_wait,
        &mut sess.imp_b,
        &cand.t1,
        1,
        config,
        ctx.oracle,
    );
    // Edge 2: B's held lock blocks A's waiter.
    let e2 = edge_condition(
        dst,
        ctx.catalog,
        b_hold,
        &mut sess.imp_b,
        a_wait,
        &mut sess.imp_a,
        &cand.t2,
        2,
        config,
        ctx.oracle,
    );
    let (Some(e1), Some(e2)) = (e1, e2) else {
        return FineVerdict::NoCandidate; // no potentially conflicting lock pair
    };

    // Path conditions recorded before each instance's waiting statement.
    let mut parts = vec![e1, e2];
    // Generated identifiers from the same database sequence never collide:
    // assert pairwise disequality within and across the two instances.
    {
        let mut all: Vec<(String, TermId)> = Vec::new();
        for (g, t) in &a.trace.unique_ids {
            all.push((g.clone(), sess.imp_a.import(dst, *t)));
        }
        for (g, t) in &b.trace.unique_ids {
            all.push((g.clone(), sess.imp_b.import(dst, *t)));
        }
        for x in 0..all.len() {
            for y in (x + 1)..all.len() {
                if all[x].0 == all[y].0 && all[x].1 != all[y].1 {
                    let (tx, ty) = (all[x].1, all[y].1);
                    parts.push(dst.ne(tx, ty));
                }
            }
        }
    }
    match &ctx.prefix {
        // Tier 2: import the pre-simplified path conditions from the
        // prefix table's context — variables unify with the edge
        // conditions by prefixed name, so the per-pair tier-0 pass only
        // ever sees already-reduced conjuncts. In incremental mode the
        // session importers' memo tables mean every conjunct is imported
        // (and, inside the persistent solver, lowered) once per *pair*,
        // not once per cycle — later cycles only add their delta.
        Some(table) => {
            let tp_a = table.trace(pair.a);
            let tp_b = table.trace(pair.b);
            let pre_a = sess.pre_a.as_mut().expect("prefix importers track table");
            let pre_b = sess.pre_b.as_mut().expect("prefix importers track table");
            for (pc, &s) in a.trace.path_conds.iter().zip(&tp_a.simplified) {
                if pc.seq < a_wait.seq {
                    parts.push(pre_a.import(dst, s));
                }
            }
            for (pc, &s) in b.trace.path_conds.iter().zip(&tp_b.simplified) {
                if pc.seq < b_wait.seq {
                    parts.push(pre_b.import(dst, s));
                }
            }
        }
        None => {
            for pc in a.trace.path_conds_before(a_wait.seq) {
                parts.push(sess.imp_a.import(dst, pc.term));
            }
            for pc in b.trace.path_conds_before(b_wait.seq) {
                parts.push(sess.imp_b.import(dst, pc.term));
            }
        }
    }
    let formula = dst.and(parts);

    let result = match (&mut sess.solver, &ctx.cache) {
        // Incremental: the whole formula rides on one assumption literal;
        // shared structure is already lowered and learned clauses from
        // earlier cycles prune this one's search.
        (Some(inc), _) => inc.check_tiered(dst, formula).0,
        (None, Some(cache)) => cache.check_tiered(dst, formula, &config.solver).0,
        (None, None) => check_tiered(dst, formula, &config.solver).0,
    };
    match result {
        SolveResult::Sat(model) => FineVerdict::Sat(Box::new(build_report(job, ctx, model))),
        SolveResult::Unsat => FineVerdict::Unsat,
        SolveResult::Unknown => FineVerdict::Unknown,
    }
}

/// Assemble the developer-facing report for a SAT cycle. Shared between
/// the live solve path and the store's warm path (which persists only the
/// satisfying model and rebuilds everything else from the live traces),
/// so warm reports are byte-identical to cold ones by construction.
fn build_report(job: &FineJob, ctx: &PairCtx<'_>, model: Model) -> DeadlockReport {
    let pair = &job.pair;
    let cand = &job.cand;
    let a = &ctx.traces[pair.a];
    let b = &ctx.traces[pair.b];
    let stmts_a = a.trace.statements_of(pair.a_txn);
    let stmts_b = b.trace.statements_of(pair.b_txn);
    let (a_hold, a_wait) = (stmts_a[cand.ah], stmts_a[cand.aw]);
    let (b_hold, b_wait) = (stmts_b[cand.bh], stmts_b[cand.bw]);
    let statements = vec![
        reported(a_hold, "A1", &cand.t1),
        reported(a_wait, "A1", &cand.t2),
        reported(b_hold, "A2", &cand.t2),
        reported(b_wait, "A2", &cand.t1),
    ];
    let model_excerpt: Vec<(String, String)> = model
        .iter()
        .filter(|(name, _)| !name.contains('!'))
        .map(|(name, v)| (name.clone(), v.to_string()))
        .collect();
    DeadlockReport {
        cycle: CycleId {
            a_api: a.trace.api.clone(),
            b_api: b.trace.api.clone(),
            a_txn: pair.a_txn,
            b_txn: pair.b_txn,
            a_hold: a_hold.index,
            a_wait: a_wait.index,
            b_hold: b_hold.index,
            b_wait: b_wait.index,
        },
        statements,
        model: model_excerpt,
        sat_model: model,
    }
}

/// [`fine_check`] behind the store: the persisted value is just the
/// verdict (plus the SAT model and the original wall time) — reports are
/// rebuilt through [`build_report`], never deserialized, so a hit spends
/// no SMT work at all and still reproduces the cold report bytes.
pub(crate) fn fine_check_cached(job: &FineJob, ctx: &PairCtx<'_>) -> FineOutcome {
    let Some(sc) = ctx.store else {
        return fine_check(job, ctx);
    };
    let site = fine_site(ctx, job);
    let content = ctx.pair_content(sc, &job.pair);
    if let Lookup::Hit(v) = sc.store.get("pair3", &site, &content) {
        if let Some(out) = fine_from_json(job, ctx, &v) {
            return out;
        }
    }
    let out = fine_check(job, ctx);
    sc.store.put("pair3", &site, &content, fine_to_json(&out));
    out
}

/// Store site of one fine-grained cycle check: the pair's site plus the
/// cycle's statement positions.
fn fine_site(ctx: &PairCtx<'_>, job: &FineJob) -> String {
    format!(
        "{}|{},{},{},{}",
        ctx.pair_site(&job.pair),
        job.cand.ah,
        job.cand.aw,
        job.cand.bh,
        job.cand.bw
    )
}

/// Incremental-mode phase 3 for every deduplicated cycle of one
/// transaction pair, in canonical order, against one shared
/// [`PairSession`] (and thus one persistent solver).
///
/// Store replay is all-or-nothing per pair: a persistent solver's
/// answers depend on its query sequence, so replaying *some* cycles from
/// the store while solving the rest live would feed the solver a
/// different sequence than a cold run saw — and its verdict bytes could
/// drift. Either every cycle of the pair hits (replay them all, no
/// solver is built), or all of them are solved live and re-persisted.
pub(crate) fn fine_check_group(jobs: &[FineJob], ctx: &PairCtx<'_>) -> Vec<FineOutcome> {
    let live = |jobs: &[FineJob]| -> Vec<FineOutcome> {
        let mut sess = PairSession::new(&jobs[0].pair, ctx);
        jobs.iter()
            .map(|job| {
                let start = Instant::now();
                let verdict = fine_check_inner(job, ctx, &mut sess);
                FineOutcome {
                    verdict,
                    time: start.elapsed(),
                }
            })
            .collect()
    };
    let Some(sc) = ctx.store else {
        return live(jobs);
    };
    let content = ctx.pair_content(sc, &jobs[0].pair);
    // Look up every cycle eagerly (no short-circuit: each lookup must
    // register its hit/stale/miss, exactly as per-job solving would),
    // then replay only if the *whole* group hit — a partial replay
    // would fork the solver's query sequence from the cold run's.
    let replayed: Vec<Option<FineOutcome>> = jobs
        .iter()
        .map(
            |job| match sc.store.get("pair3", &fine_site(ctx, job), &content) {
                Lookup::Hit(v) => fine_from_json(job, ctx, &v),
                _ => None,
            },
        )
        .collect();
    if replayed.iter().all(Option::is_some) {
        return replayed.into_iter().flatten().collect();
    }
    let outs = live(jobs);
    for (job, out) in jobs.iter().zip(&outs) {
        sc.store
            .put("pair3", &fine_site(ctx, job), &content, fine_to_json(out));
    }
    outs
}

fn fine_to_json(out: &FineOutcome) -> Json {
    let mut fields = vec![(
        "verdict".into(),
        Json::str(match &out.verdict {
            FineVerdict::NoCandidate => "nocand",
            FineVerdict::Sat(_) => "sat",
            FineVerdict::Unsat => "unsat",
            FineVerdict::Unknown => "unknown",
        }),
    )];
    if let FineVerdict::Sat(report) = &out.verdict {
        fields.push(("model".into(), codec::model_to_json(&report.sat_model)));
    }
    fields.push(("us".into(), Json::u64(out.time.as_micros() as u64)));
    Json::Obj(fields)
}

fn fine_from_json(job: &FineJob, ctx: &PairCtx<'_>, v: &Json) -> Option<FineOutcome> {
    let verdict = match v.get("verdict")?.as_str()? {
        "nocand" => FineVerdict::NoCandidate,
        "sat" => {
            let model = codec::model_from_json(v.get("model")?)?;
            FineVerdict::Sat(Box::new(build_report(job, ctx, model)))
        }
        "unsat" => FineVerdict::Unsat,
        "unknown" => FineVerdict::Unknown,
        _ => return None,
    };
    Some(FineOutcome {
        verdict,
        time: Duration::from_micros(v.get("us")?.as_u64()?),
    })
}

/// The staged pipeline: generate → scan (parallel) → dedup sweep (ordered)
/// → fine checks (parallel) → reduce (ordered).
/// Timeline instant marking a phase transition of the diagnosis
/// pipeline. Cheap no-op while the timeline is disabled.
fn timeline_phase(name: &'static str, what: &str) {
    if weseer_obs::timeline::enabled() {
        weseer_obs::timeline::instant(name, "analyzer", &[("what", what.to_string())]);
    }
}

fn run_pipeline(
    catalog: &Catalog,
    traces: &[CollectedTrace],
    config: &AnalyzerConfig,
    oracle: Option<&dyn IndexOracle>,
    store: Option<&StoreCtx<'_>>,
    exec: Exec,
    sink: &mut Option<&mut dyn FnMut(&DeadlockReport)>,
) -> Diagnosis {
    let mut stats = DiagnosisStats::default();

    // ---- Phase 1: transaction-level conflict filter --------------------
    timeline_phase("analyzer.phase1", "txn-level conflict filter");
    let phase1_start = Instant::now();
    let mut pair_set = generate_pairs(traces, config.skip_filter_phases);
    stats.phase1_time = phase1_start.elapsed();
    stats.txn_pairs = pair_set.total;
    stats.pairs_after_phase1 = pair_set.jobs.len();

    // ---- Tier 2: shared path-condition prefixes ------------------------
    // Built once per run (sequentially — deterministic pipeline setup).
    // A pair whose side has an UNSAT standalone prefix would get an UNSAT
    // verdict for every cycle, so killing it here changes only funnel
    // counters, never the report set.
    let prefix = (config.fine_grained && config.solver.tiers.prefix)
        .then(|| PrefixTable::build_with_store(traces, &config.solver, store));
    if let Some(table) = &prefix {
        stats.prefix_kills = prune_unsat_prefixes(&mut pair_set.jobs, table);
    }

    let threads = resolve_threads(config.threads);
    let pctx = PairCtx::new(catalog, traces, config, oracle, prefix, store);

    // Warm-start the verdict cache from persisted SMT verdicts recorded
    // under the same solver configuration. Entries are keyed by the
    // canonical formula itself (carried in the value — the site is just
    // its hash), so seeding is exact.
    let solver_tag = format!("solver={:?}", config.solver);
    if let (Some(sc), Some(cache)) = (store, &pctx.cache) {
        for (_, content, v) in sc.store.entries_of("smt") {
            if content != solver_tag {
                continue;
            }
            if let (Some(key), Some(verdict)) = (
                v.get("k").and_then(Json::as_str),
                v.get("r").and_then(codec::verdict_from_json),
            ) {
                cache.seed(key.to_string(), verdict);
            }
        }
    }

    // ---- Phase 2: coarse SC-graph deadlock cycles (parallel) -----------
    timeline_phase("analyzer.phase2", "coarse SC-graph cycle scan");
    let pair_keys: Vec<u64> = pair_set
        .jobs
        .iter()
        .map(|job| pair_shard_key(traces, job))
        .collect();
    let outcomes = exec.run(
        &pair_set.jobs,
        threads,
        |i, _| pair_keys[i],
        |_, job| scan_pair_cached(job, &pctx),
        |_, _| {},
    );

    // Ordered sweep: cycles with the same statement templates and conflict
    // tables are one deadlock pattern; check each pattern once (the
    // paper's authors group reports the same way). The dedup is cross-pair
    // state, so it runs sequentially in canonical pair order.
    let mut seen: HashSet<String> = HashSet::new();
    let mut fine_jobs: Vec<FineJob> = Vec::new();
    for (job, out) in pair_set.jobs.iter().zip(&outcomes) {
        stats.coarse_cycles += out.coarse_cycles;
        stats.phase2_time += out.scan_time;
        if out.cycles.is_empty() {
            continue;
        }
        let a = &pctx.traces[job.a];
        let b = &pctx.traces[job.b];
        let stmts_a = a.trace.statements_of(job.a_txn);
        let stmts_b = b.trace.statements_of(job.b_txn);
        for cand in &out.cycles {
            let signature = format!(
                "{}|{}|{}|{}|{}|{}|{:?}|{:?}",
                a.trace.api,
                b.trace.api,
                pctx.sql(job.a, stmts_a[cand.ah]),
                pctx.sql(job.a, stmts_a[cand.aw]),
                pctx.sql(job.b, stmts_b[cand.bh]),
                pctx.sql(job.b, stmts_b[cand.bw]),
                cand.t1,
                cand.t2,
            );
            if seen.insert(signature) {
                fine_jobs.push(FineJob {
                    pair: *job,
                    cand: cand.clone(),
                });
            }
        }
    }

    // ---- Phase 3: fine-grained lock modeling + SMT (parallel) ----------
    // The ordered reduce — stats, reports, `max_reports` truncation, and
    // the streaming sink — is fused into the scheduler's in-order
    // `on_ready` sweep, so a sharded run emits each confirmed report
    // while later cycles are still solving, with bytes identical to the
    // batch reduce (the sweep follows canonical input order either way).
    timeline_phase("analyzer.phase3", "fine-grained lock modeling + SMT");
    let mut reports: Vec<DeadlockReport> = Vec::new();
    let mut truncated = false;
    fn absorb(
        out: &FineOutcome,
        stats: &mut DiagnosisStats,
        reports: &mut Vec<DeadlockReport>,
        truncated: &mut bool,
        max_reports: usize,
        sink: &mut Option<&mut dyn FnMut(&DeadlockReport)>,
    ) {
        if *truncated {
            return;
        }
        stats.phase3_time += out.time;
        match &out.verdict {
            FineVerdict::NoCandidate => {}
            FineVerdict::Sat(report) => {
                stats.fine_candidates += 1;
                stats.smt_sat += 1;
                if let Some(s) = sink.as_mut() {
                    s(report);
                }
                reports.push((**report).clone());
            }
            FineVerdict::Unsat => {
                stats.fine_candidates += 1;
                stats.smt_unsat += 1;
            }
            FineVerdict::Unknown => {
                stats.fine_candidates += 1;
                stats.smt_unknown += 1;
            }
        }
        if reports.len() >= max_reports {
            *truncated = true;
        }
    }
    if config.solver.tiers.incremental {
        // Incremental mode parallelizes over *pairs*, not cycles: each
        // pair's cycles share one persistent solver and must run in
        // canonical order on one thread. The dedup sweep above emits
        // jobs grouped by pair already, so grouping is a linear pass.
        let mut groups: Vec<Vec<FineJob>> = Vec::new();
        for fj in fine_jobs {
            match groups.last_mut() {
                Some(g) if g[0].pair == fj.pair => g.push(fj),
                _ => groups.push(vec![fj]),
            }
        }
        let group_keys: Vec<u64> = groups
            .iter()
            .map(|g| pair_shard_key(traces, &g[0].pair))
            .collect();
        exec.run(
            &groups,
            threads,
            |i, _| group_keys[i],
            |_, g| fine_check_group(g, &pctx),
            |_, outs: &Vec<FineOutcome>| {
                for out in outs {
                    absorb(
                        out,
                        &mut stats,
                        &mut reports,
                        &mut truncated,
                        config.max_reports,
                        sink,
                    );
                }
            },
        );
    } else {
        let fine_keys: Vec<u64> = fine_jobs
            .iter()
            .map(|fj| pair_shard_key(traces, &fj.pair))
            .collect();
        exec.run(
            &fine_jobs,
            threads,
            |i, _| fine_keys[i],
            |_, fj| fine_check_cached(fj, &pctx),
            |_, out| {
                absorb(
                    out,
                    &mut stats,
                    &mut reports,
                    &mut truncated,
                    config.max_reports,
                    sink,
                );
            },
        );
    }

    // Persist the SMT verdicts this run produced (hit-or-miss: `put` of
    // an unchanged entry is a no-op, so repeat runs do not grow the file).
    if let (Some(sc), Some(cache)) = (store, &pctx.cache) {
        for (key, verdict) in cache.export() {
            let value = Json::Obj(vec![
                ("k".into(), Json::str(key.clone())),
                ("r".into(), codec::verdict_to_json(&verdict)),
            ]);
            sc.store.put("smt", &site_hash(&key), &solver_tag, value);
        }
    }

    Diagnosis {
        deadlocks: reports,
        stats,
    }
}

/// Coarse C-edge: tables both access where at least one writes.
fn conflict_tables(a: &StmtRecord, b: &StmtRecord) -> Vec<String> {
    let mut out = Vec::new();
    for t in a.stmt.tables() {
        if !b.stmt.tables().contains(&t) {
            continue;
        }
        let a_writes = a.stmt.written_table() == Some(t.as_str());
        let b_writes = b.stmt.written_table() == Some(t.as_str());
        if (a_writes || b_writes) && !out.contains(&t) {
            out.push(t);
        }
    }
    out
}

/// A C-edge's conflict condition: the *holder*'s acquired locks block the
/// *waiter*'s requested locks on some common table.
#[allow(clippy::too_many_arguments)]
fn edge_condition(
    dst: &mut Ctx,
    catalog: &Catalog,
    holder: &StmtRecord,
    holder_imp: &mut Importer<'_>,
    waiter: &StmtRecord,
    waiter_imp: &mut Importer<'_>,
    tables: &[String],
    edge: usize,
    config: &AnalyzerConfig,
    oracle: Option<&dyn IndexOracle>,
) -> Option<TermId> {
    let mut arms: Vec<TermId> = Vec::new();
    for table in tables {
        // Orientations: Alg. 3 takes (sqlw = writer, sqlr = the other).
        let holder_writes = holder.stmt.written_table() == Some(table.as_str());
        let waiter_writes = waiter.stmt.written_table() == Some(table.as_str());
        let mut orientations: Vec<(bool, bool)> = Vec::new();
        if waiter_writes {
            orientations.push((false, true)); // w = waiter, r = holder
        }
        if holder_writes {
            orientations.push((true, false)); // w = holder, r = waiter
        }
        for (w_is_holder, _) in orientations {
            let (w_rec, r_rec) = if w_is_holder {
                (holder, waiter)
            } else {
                (waiter, holder)
            };
            // Fine-grained lock filter: some lock pair must be able to
            // conflict on this table.
            let locks_w = gen_exclusive_locks(&w_rec.stmt, table, catalog);
            let locks_r = gen_shared_locks(&r_rec.stmt, table, r_rec.is_empty, catalog, oracle);
            if !potential_conflict(&locks_w, &locks_r) {
                continue;
            }
            let cond = if w_is_holder {
                let mut w_side = Side {
                    rec: w_rec,
                    imp: holder_imp,
                };
                let mut r_side = Side {
                    rec: r_rec,
                    imp: waiter_imp,
                };
                gen_conflict_cond(
                    dst,
                    catalog,
                    &mut w_side,
                    &mut r_side,
                    table,
                    edge,
                    config.use_range_locks,
                    oracle,
                )
            } else {
                let mut w_side = Side {
                    rec: w_rec,
                    imp: waiter_imp,
                };
                let mut r_side = Side {
                    rec: r_rec,
                    imp: holder_imp,
                };
                gen_conflict_cond(
                    dst,
                    catalog,
                    &mut w_side,
                    &mut r_side,
                    table,
                    edge,
                    config.use_range_locks,
                    oracle,
                )
            };
            arms.push(cond);
        }
    }
    if arms.is_empty() {
        None
    } else {
        Some(dst.or(arms))
    }
}

fn reported(rec: &StmtRecord, instance: &str, tables: &[String]) -> ReportedStatement {
    ReportedStatement {
        label: format!("{instance}.{}", rec.label()),
        sql: rec.stmt.to_string(),
        table: tables.first().cloned().unwrap_or_default(),
        trigger: rec.trigger.clone(),
    }
}

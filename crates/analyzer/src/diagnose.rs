//! The three-phase deadlock diagnosis (paper Sec. V-B, Fig. 5).
//!
//! Every collected trace is analyzed as **two concurrent instances** of the
//! same API (and against every other trace), mirroring the paper's setup.
//!
//! * **Transaction-level phase** — keep only transaction pairs that write a
//!   commonly accessed table (conflict-cycle filter);
//! * **Coarse-grained phase** — enumerate SC-graph deadlock cycles: A holds
//!   the lock of an earlier statement that conflicts with B's later
//!   statement and vice versa (table-level C-edges);
//! * **Fine-grained phase** — model locks (Alg. 2), require a potentially
//!   conflicting lock pair per C-edge, generate conflict conditions
//!   (Alg. 3), conjoin with both instances' path conditions up to the
//!   waiting statements, and ask the SMT solver. SAT ⇒ deadlock reported
//!   with a witness model.

use crate::encode::{gen_conflict_cond, Importer, Side};
use crate::indexes::IndexOracle;
use crate::locks::{gen_exclusive_locks, gen_shared_locks, potential_conflict};
use crate::report::{CycleId, DeadlockReport, ReportedStatement};
use std::collections::HashSet;
use std::time::{Duration, Instant};
use weseer_concolic::{StmtRecord, Trace};
use weseer_smt::{check, Ctx, SolveResult, SolverConfig, TermId};
use weseer_sqlir::Catalog;

/// A trace together with the term context of the engine that produced it.
pub struct CollectedTrace {
    /// The runtime trace.
    pub trace: Trace,
    /// Term context holding the trace's symbolic expressions.
    pub ctx: Ctx,
}

impl CollectedTrace {
    /// Wrap a trace and its context.
    pub fn new(trace: Trace, ctx: Ctx) -> Self {
        CollectedTrace { trace, ctx }
    }

    /// The traced API name.
    pub fn api(&self) -> &str {
        &self.trace.api
    }
}

/// Analyzer configuration.
#[derive(Debug, Clone)]
pub struct AnalyzerConfig {
    /// SMT solver limits.
    pub solver: SolverConfig,
    /// Run the fine-grained phase (false = the STEPDAD/REDACT-style coarse
    /// baseline that reports every coarse cycle).
    pub fine_grained: bool,
    /// Model range locks in conflict conditions (Alg. 3 lines 10–13).
    pub use_range_locks: bool,
    /// Skip the first two (filtering) phases and send every coarse cycle
    /// candidate straight to the SMT solver — the brute-force baseline of
    /// Sec. V-B, used by the ablation bench.
    pub skip_filter_phases: bool,
    /// Stop after this many confirmed reports.
    pub max_reports: usize,
}

impl Default for AnalyzerConfig {
    fn default() -> Self {
        AnalyzerConfig {
            solver: SolverConfig::default(),
            fine_grained: true,
            use_range_locks: true,
            skip_filter_phases: false,
            max_reports: 10_000,
        }
    }
}

/// Diagnosis-wide counters and per-phase wall times.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiagnosisStats {
    /// Transaction pairs examined.
    pub txn_pairs: usize,
    /// Pairs surviving the transaction-level phase.
    pub pairs_after_phase1: usize,
    /// Coarse-grained deadlock cycles found (phase 2).
    pub coarse_cycles: usize,
    /// Cycles whose C-edges had potentially conflicting locks (entering
    /// SMT).
    pub fine_candidates: usize,
    /// SMT SAT / UNSAT / Unknown outcomes.
    pub smt_sat: usize,
    /// SMT UNSAT outcomes.
    pub smt_unsat: usize,
    /// SMT timeouts.
    pub smt_unknown: usize,
    /// Wall time spent in the transaction-level filter (phase 1).
    pub phase1_time: Duration,
    /// Wall time spent enumerating coarse SC-graph cycles (phase 2),
    /// excluding the fine-grained checks it dispatches.
    pub phase2_time: Duration,
    /// Wall time spent in fine-grained lock modeling + SMT (phase 3).
    pub phase3_time: Duration,
}

impl DiagnosisStats {
    /// Publish the funnel counters and phase timings to the global
    /// [`weseer_obs`] registry (no-op while observability is disabled).
    pub fn publish(&self) {
        weseer_obs::add("analyzer.txn_pairs", self.txn_pairs as u64);
        weseer_obs::add(
            "analyzer.pairs_after_phase1",
            self.pairs_after_phase1 as u64,
        );
        weseer_obs::add("analyzer.coarse_cycles", self.coarse_cycles as u64);
        weseer_obs::add("analyzer.fine_candidates", self.fine_candidates as u64);
        weseer_obs::add("analyzer.smt_sat", self.smt_sat as u64);
        weseer_obs::add("analyzer.smt_unsat", self.smt_unsat as u64);
        weseer_obs::add("analyzer.smt_unknown", self.smt_unknown as u64);
        weseer_obs::add("analyzer.phase1_us", self.phase1_time.as_micros() as u64);
        weseer_obs::add("analyzer.phase2_us", self.phase2_time.as_micros() as u64);
        weseer_obs::add("analyzer.phase3_us", self.phase3_time.as_micros() as u64);
    }
}

/// The result of a diagnosis run.
#[derive(Debug)]
pub struct Diagnosis {
    /// Confirmed deadlocks.
    pub deadlocks: Vec<DeadlockReport>,
    /// Counters.
    pub stats: DiagnosisStats,
}

/// Run WeSEER's deadlock analysis over a set of collected traces.
pub fn diagnose(
    catalog: &Catalog,
    traces: &[CollectedTrace],
    config: &AnalyzerConfig,
) -> Diagnosis {
    diagnose_with_oracle(catalog, traces, config, None)
}

/// Like [`diagnose`], but consulting a concrete-plan oracle (`EXPLAIN`)
/// so lock modeling only considers the index the database would actually
/// use — the paper's Sec. V-D future work for cutting false positives.
pub fn diagnose_with_oracle(
    catalog: &Catalog,
    traces: &[CollectedTrace],
    config: &AnalyzerConfig,
    oracle: Option<&dyn IndexOracle>,
) -> Diagnosis {
    let _span = weseer_obs::span("analyzer.diagnose");
    let mut stats = DiagnosisStats::default();
    let mut reports: Vec<DeadlockReport> = Vec::new();
    let mut seen = HashSet::new();

    'pairs: for (i, a) in traces.iter().enumerate() {
        for (j, b) in traces.iter().enumerate().skip(i) {
            for a_txn in 0..a.trace.txns.len() {
                let b_start = if i == j { a_txn } else { 0 };
                for b_txn in b_start..b.trace.txns.len() {
                    diagnose_txn_pair(
                        catalog,
                        (a, a_txn),
                        (b, b_txn),
                        i == j && a_txn == b_txn,
                        config,
                        oracle,
                        &mut stats,
                        &mut reports,
                        &mut seen,
                    );
                    if reports.len() >= config.max_reports {
                        break 'pairs;
                    }
                }
            }
        }
    }
    stats.publish();
    weseer_obs::add("analyzer.deadlocks_reported", reports.len() as u64);
    Diagnosis {
        deadlocks: reports,
        stats,
    }
}

/// Count coarse-grained deadlock cycles only (the STEPDAD/REDACT baseline
/// of Sec. VII-B, which reports 18,384 hold-and-wait cycles on the paper's
/// workload). No lock modeling, no SMT.
pub fn coarse_cycle_count(traces: &[CollectedTrace]) -> usize {
    let mut config = AnalyzerConfig {
        fine_grained: false,
        ..AnalyzerConfig::default()
    };
    config.max_reports = usize::MAX;
    let mut stats = DiagnosisStats::default();
    let mut reports = Vec::new();
    let mut seen = HashSet::new();
    let catalog = Catalog::default();
    for (i, a) in traces.iter().enumerate() {
        for (j, b) in traces.iter().enumerate().skip(i) {
            for a_txn in 0..a.trace.txns.len() {
                let b_start = if i == j { a_txn } else { 0 };
                for b_txn in b_start..b.trace.txns.len() {
                    diagnose_txn_pair(
                        &catalog,
                        (a, a_txn),
                        (b, b_txn),
                        i == j && a_txn == b_txn,
                        &config,
                        None,
                        &mut stats,
                        &mut reports,
                        &mut seen,
                    );
                }
            }
        }
    }
    stats.coarse_cycles
}

fn txn_tables(trace: &Trace, txn: usize) -> (Vec<String>, Vec<String>) {
    let mut accessed = Vec::new();
    let mut written = Vec::new();
    for s in trace.statements_of(txn) {
        for t in s.stmt.tables() {
            if !accessed.contains(&t) {
                accessed.push(t);
            }
        }
        if let Some(w) = s.stmt.written_table() {
            if !written.contains(&w.to_string()) {
                written.push(w.to_string());
            }
        }
    }
    (accessed, written)
}

/// Coarse C-edge: tables both access where at least one writes.
fn conflict_tables(a: &StmtRecord, b: &StmtRecord) -> Vec<String> {
    let mut out = Vec::new();
    for t in a.stmt.tables() {
        if !b.stmt.tables().contains(&t) {
            continue;
        }
        let a_writes = a.stmt.written_table() == Some(t.as_str());
        let b_writes = b.stmt.written_table() == Some(t.as_str());
        if (a_writes || b_writes) && !out.contains(&t) {
            out.push(t);
        }
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn diagnose_txn_pair(
    catalog: &Catalog,
    (a, a_txn): (&CollectedTrace, usize),
    (b, b_txn): (&CollectedTrace, usize),
    same_instance_pair: bool,
    config: &AnalyzerConfig,
    oracle: Option<&dyn IndexOracle>,
    stats: &mut DiagnosisStats,
    reports: &mut Vec<DeadlockReport>,
    seen: &mut HashSet<String>,
) {
    stats.txn_pairs += 1;

    // ---- Phase 1: transaction-level conflict filter --------------------
    let phase1_start = Instant::now();
    if !config.skip_filter_phases {
        let (acc_a, wr_a) = txn_tables(&a.trace, a_txn);
        let (acc_b, wr_b) = txn_tables(&b.trace, b_txn);
        let conflict = acc_a
            .iter()
            .any(|t| acc_b.contains(t) && (wr_a.contains(t) || wr_b.contains(t)));
        if !conflict {
            stats.phase1_time += phase1_start.elapsed();
            return;
        }
    }
    stats.phase1_time += phase1_start.elapsed();
    stats.pairs_after_phase1 += 1;

    // ---- Phase 2: coarse SC-graph deadlock cycles -----------------------
    // Phase-2 time is the cycle enumeration below minus whatever
    // fine_check (phase 3) accumulates while dispatched from it.
    let phase2_start = Instant::now();
    let phase3_before = stats.phase3_time;
    let record_phase2 = |stats: &mut DiagnosisStats| {
        stats.phase2_time += phase2_start
            .elapsed()
            .saturating_sub(stats.phase3_time - phase3_before);
    };
    let stmts_a = a.trace.statements_of(a_txn);
    let stmts_b = b.trace.statements_of(b_txn);
    for (ah, a_hold) in stmts_a.iter().enumerate() {
        for a_wait in stmts_a.iter().skip(ah + 1) {
            for (bh, b_hold) in stmts_b.iter().enumerate() {
                for b_wait in stmts_b.iter().skip(bh + 1) {
                    if same_instance_pair
                        && (b_hold.index, b_wait.index) < (a_hold.index, a_wait.index)
                    {
                        continue; // symmetric duplicate
                    }
                    // C-edges at table granularity (unless brute force).
                    let t1 = conflict_tables(a_hold, b_wait);
                    let t2 = conflict_tables(b_hold, a_wait);
                    if !config.skip_filter_phases && (t1.is_empty() || t2.is_empty()) {
                        continue;
                    }
                    stats.coarse_cycles += 1;
                    if !config.fine_grained {
                        continue;
                    }
                    // Cycles with the same statement templates and conflict
                    // tables are one deadlock pattern; check each pattern
                    // once (the paper's authors group reports the same way).
                    let signature = format!(
                        "{}|{}|{}|{}|{}|{}|{t1:?}|{t2:?}",
                        a.trace.api,
                        b.trace.api,
                        a_hold.stmt,
                        a_wait.stmt,
                        b_hold.stmt,
                        b_wait.stmt,
                    );
                    if !seen.insert(signature) {
                        continue;
                    }
                    fine_check(
                        catalog,
                        oracle,
                        a,
                        b,
                        CycleId {
                            a_api: a.trace.api.clone(),
                            b_api: b.trace.api.clone(),
                            a_txn,
                            b_txn,
                            a_hold: a_hold.index,
                            a_wait: a_wait.index,
                            b_hold: b_hold.index,
                            b_wait: b_wait.index,
                        },
                        (a_hold, a_wait, b_hold, b_wait),
                        (&t1, &t2),
                        config,
                        stats,
                        reports,
                    );
                    if reports.len() >= config.max_reports {
                        record_phase2(stats);
                        return;
                    }
                }
            }
        }
    }
    record_phase2(stats);
}

/// A C-edge's conflict condition: the *holder*'s acquired locks block the
/// *waiter*'s requested locks on some common table.
#[allow(clippy::too_many_arguments)]
fn edge_condition(
    dst: &mut Ctx,
    catalog: &Catalog,
    holder: &StmtRecord,
    holder_imp: &mut Importer<'_>,
    waiter: &StmtRecord,
    waiter_imp: &mut Importer<'_>,
    tables: &[String],
    edge: usize,
    config: &AnalyzerConfig,
    oracle: Option<&dyn IndexOracle>,
) -> Option<TermId> {
    let mut arms: Vec<TermId> = Vec::new();
    for table in tables {
        // Orientations: Alg. 3 takes (sqlw = writer, sqlr = the other).
        let holder_writes = holder.stmt.written_table() == Some(table.as_str());
        let waiter_writes = waiter.stmt.written_table() == Some(table.as_str());
        let mut orientations: Vec<(bool, bool)> = Vec::new();
        if waiter_writes {
            orientations.push((false, true)); // w = waiter, r = holder
        }
        if holder_writes {
            orientations.push((true, false)); // w = holder, r = waiter
        }
        for (w_is_holder, _) in orientations {
            let (w_rec, r_rec) = if w_is_holder {
                (holder, waiter)
            } else {
                (waiter, holder)
            };
            // Fine-grained lock filter: some lock pair must be able to
            // conflict on this table.
            let locks_w = gen_exclusive_locks(&w_rec.stmt, table, catalog);
            let locks_r = gen_shared_locks(&r_rec.stmt, table, r_rec.is_empty, catalog, oracle);
            if !potential_conflict(&locks_w, &locks_r) {
                continue;
            }
            let cond = if w_is_holder {
                let mut w_side = Side {
                    rec: w_rec,
                    imp: holder_imp,
                };
                let mut r_side = Side {
                    rec: r_rec,
                    imp: waiter_imp,
                };
                gen_conflict_cond(
                    dst,
                    catalog,
                    &mut w_side,
                    &mut r_side,
                    table,
                    edge,
                    config.use_range_locks,
                    oracle,
                )
            } else {
                let mut w_side = Side {
                    rec: w_rec,
                    imp: waiter_imp,
                };
                let mut r_side = Side {
                    rec: r_rec,
                    imp: holder_imp,
                };
                gen_conflict_cond(
                    dst,
                    catalog,
                    &mut w_side,
                    &mut r_side,
                    table,
                    edge,
                    config.use_range_locks,
                    oracle,
                )
            };
            arms.push(cond);
        }
    }
    if arms.is_empty() {
        None
    } else {
        Some(dst.or(arms))
    }
}

#[allow(clippy::too_many_arguments)]
fn fine_check(
    catalog: &Catalog,
    oracle: Option<&dyn IndexOracle>,
    a: &CollectedTrace,
    b: &CollectedTrace,
    cycle: CycleId,
    stmts: (&StmtRecord, &StmtRecord, &StmtRecord, &StmtRecord),
    tables: (&[String], &[String]),
    config: &AnalyzerConfig,
    stats: &mut DiagnosisStats,
    reports: &mut Vec<DeadlockReport>,
) {
    let start = Instant::now();
    fine_check_inner(
        catalog, oracle, a, b, cycle, stmts, tables, config, stats, reports,
    );
    stats.phase3_time += start.elapsed();
}

#[allow(clippy::too_many_arguments)]
fn fine_check_inner(
    catalog: &Catalog,
    oracle: Option<&dyn IndexOracle>,
    a: &CollectedTrace,
    b: &CollectedTrace,
    cycle: CycleId,
    (a_hold, a_wait, b_hold, b_wait): (&StmtRecord, &StmtRecord, &StmtRecord, &StmtRecord),
    (t1, t2): (&[String], &[String]),
    config: &AnalyzerConfig,
    stats: &mut DiagnosisStats,
    reports: &mut Vec<DeadlockReport>,
) {
    let mut dst = Ctx::new();
    let mut imp_a = Importer::new(&a.ctx, "A1.");
    let mut imp_b = Importer::new(&b.ctx, "A2.");

    // Edge 1: A's held lock (a_hold) blocks B's waiter (b_wait).
    let e1 = edge_condition(
        &mut dst, catalog, a_hold, &mut imp_a, b_wait, &mut imp_b, t1, 1, config, oracle,
    );
    // Edge 2: B's held lock blocks A's waiter.
    let e2 = edge_condition(
        &mut dst, catalog, b_hold, &mut imp_b, a_wait, &mut imp_a, t2, 2, config, oracle,
    );
    let (Some(e1), Some(e2)) = (e1, e2) else {
        return; // no potentially conflicting lock pair on some edge
    };
    stats.fine_candidates += 1;

    // Path conditions recorded before each instance's waiting statement.
    let mut parts = vec![e1, e2];
    // Generated identifiers from the same database sequence never collide:
    // assert pairwise disequality within and across the two instances.
    {
        let mut all: Vec<(String, TermId)> = Vec::new();
        for (g, t) in &a.trace.unique_ids {
            all.push((g.clone(), imp_a.import(&mut dst, *t)));
        }
        for (g, t) in &b.trace.unique_ids {
            all.push((g.clone(), imp_b.import(&mut dst, *t)));
        }
        for x in 0..all.len() {
            for y in (x + 1)..all.len() {
                if all[x].0 == all[y].0 && all[x].1 != all[y].1 {
                    let (tx, ty) = (all[x].1, all[y].1);
                    parts.push(dst.ne(tx, ty));
                }
            }
        }
    }
    for pc in a.trace.path_conds_before(a_wait.seq) {
        parts.push(imp_a.import(&mut dst, pc.term));
    }
    for pc in b.trace.path_conds_before(b_wait.seq) {
        parts.push(imp_b.import(&mut dst, pc.term));
    }
    let formula = dst.and(parts);

    match check(&mut dst, formula, &config.solver) {
        SolveResult::Sat(model) => {
            stats.smt_sat += 1;
            let statements = vec![
                reported(a_hold, "A1", t1),
                reported(a_wait, "A1", t2),
                reported(b_hold, "A2", t2),
                reported(b_wait, "A2", t1),
            ];
            let model_excerpt: Vec<(String, String)> = model
                .iter()
                .filter(|(name, _)| !name.contains('!'))
                .map(|(name, v)| (name.clone(), v.to_string()))
                .collect();
            reports.push(DeadlockReport {
                cycle,
                statements,
                model: model_excerpt,
            });
        }
        SolveResult::Unsat => stats.smt_unsat += 1,
        SolveResult::Unknown => stats.smt_unknown += 1,
    }
}

fn reported(rec: &StmtRecord, instance: &str, tables: &[String]) -> ReportedStatement {
    ReportedStatement {
        label: format!("{instance}.{}", rec.label()),
        sql: rec.stmt.to_string(),
        table: tables.first().cloned().unwrap_or_default(),
        trigger: rec.trigger.clone(),
    }
}

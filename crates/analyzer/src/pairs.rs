//! Phase 1 as an explicit *pair generator*.
//!
//! The transaction-level filter (paper Sec. V-B) keeps only transaction
//! pairs that write a commonly accessed table. Instead of testing the
//! predicate inside an O(n²) quadruple loop, [`generate_pairs`] builds the
//! transaction-level conflict graph once — a table → accessors/writers
//! index over every `(trace, txn)` unit — and emits exactly the conflicting
//! pairs, in canonical order. Pruned pairs are never enumerated downstream.
//!
//! Canonical order is the legacy loop order — lexicographic
//! `(a, b, a_txn, b_txn)` — which the deterministic scheduler's ordered
//! merge relies on. [`PairJob`]'s derived `Ord` encodes it, so keep the
//! field declaration order.

use crate::diagnose::CollectedTrace;
use crate::prefix::PrefixTable;
use std::collections::{BTreeMap, BTreeSet};
use weseer_concolic::Trace;

/// One unit of phase-2/3 work: transaction `a_txn` of trace `a` paired
/// with transaction `b_txn` of trace `b` (two concurrent API instances).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PairJob {
    /// First trace index (`a <= b`).
    pub a: usize,
    /// Second trace index.
    pub b: usize,
    /// Transaction within trace `a`.
    pub a_txn: usize,
    /// Transaction within trace `b` (`a_txn <= b_txn` when `a == b`).
    pub b_txn: usize,
}

impl PairJob {
    /// Both sides are the same transaction of the same trace (the two
    /// concurrent instances run identical code), so symmetric cycles are
    /// deduplicated during the scan.
    pub fn same_instance(&self) -> bool {
        self.a == self.b && self.a_txn == self.b_txn
    }
}

/// Output of the generator: the surviving pairs plus the size of the full
/// pair space they were drawn from.
#[derive(Debug)]
pub struct PairSet {
    /// Conflicting pairs in canonical `(a, b, a_txn, b_txn)` order.
    pub jobs: Vec<PairJob>,
    /// Total unordered transaction pairs (incl. self-pairs) the legacy
    /// enumeration would have examined — the funnel's `txn_pairs` stage.
    pub total: usize,
}

impl PairSet {
    /// Pairs removed by the transaction-level filter.
    pub fn pruned(&self) -> usize {
        self.total - self.jobs.len()
    }
}

/// Tier-2 prune: drop every pair with a side whose standalone
/// path-condition prefix is definitely UNSAT — the fine phase's formula
/// for such a pair conjoins that prefix, so its verdict is already known
/// to be UNSAT. Returns the number of pairs killed.
pub(crate) fn prune_unsat_prefixes(jobs: &mut Vec<PairJob>, table: &PrefixTable) -> usize {
    let before = jobs.len();
    jobs.retain(|j| !table.prefix_unsat(j.a, j.a_txn) && !table.prefix_unsat(j.b, j.b_txn));
    before - jobs.len()
}

/// Tables accessed and written by one transaction of a trace.
pub(crate) fn txn_tables(trace: &Trace, txn: usize) -> (Vec<String>, Vec<String>) {
    let mut accessed = Vec::new();
    let mut written = Vec::new();
    for s in trace.statements_of(txn) {
        for t in s.stmt.tables() {
            if !accessed.contains(&t) {
                accessed.push(t);
            }
        }
        if let Some(w) = s.stmt.written_table() {
            if !written.contains(&w.to_string()) {
                written.push(w.to_string());
            }
        }
    }
    (accessed, written)
}

/// Build the phase-1 pair set. With `skip_filter` every pair of the space
/// is yielded (the brute-force baseline of Sec. V-B).
pub fn generate_pairs(traces: &[CollectedTrace], skip_filter: bool) -> PairSet {
    // Units: every (trace, txn), flattened.
    let units: Vec<(usize, usize)> = traces
        .iter()
        .enumerate()
        .flat_map(|(i, t)| (0..t.trace.txns.len()).map(move |x| (i, x)))
        .collect();
    let total = units.len() * (units.len() + 1) / 2;

    let job_of = |u: (usize, usize), v: (usize, usize)| {
        let (lo, hi) = if u <= v { (u, v) } else { (v, u) };
        PairJob {
            a: lo.0,
            b: hi.0,
            a_txn: lo.1,
            b_txn: hi.1,
        }
    };

    if skip_filter {
        let mut jobs = Vec::with_capacity(total);
        for (i, &u) in units.iter().enumerate() {
            for &v in &units[i..] {
                jobs.push(job_of(u, v));
            }
        }
        jobs.sort_unstable();
        return PairSet { jobs, total };
    }

    // Conflict graph, built once: table → (accessor units, writer units).
    let mut by_table: BTreeMap<String, (Vec<usize>, Vec<usize>)> = BTreeMap::new();
    for (uid, &(i, x)) in units.iter().enumerate() {
        let (accessed, written) = txn_tables(&traces[i].trace, x);
        // The filter predicate needs the conflict table *accessed* by both
        // sides, so a write to a never-read table only counts if the
        // statement's table set covers it too (it always does for SQL we
        // emit, but keep the graph faithful to the predicate).
        for t in &written {
            if accessed.contains(t) {
                by_table.entry(t.clone()).or_default().1.push(uid);
            }
        }
        for t in accessed {
            by_table.entry(t).or_default().0.push(uid);
        }
    }

    // A pair conflicts iff some table is accessed by both and written by
    // at least one — i.e. it joins a writer with an accessor (possibly the
    // same unit: a self-pair of two concurrent instances of one writing
    // transaction).
    let mut set: BTreeSet<PairJob> = BTreeSet::new();
    for (accessors, writers) in by_table.values() {
        for &w in writers {
            for &u in accessors {
                set.insert(job_of(units[w], units[u]));
            }
        }
    }
    PairSet {
        jobs: set.into_iter().collect(),
        total,
    }
}

//! Inferring the database indexes a statement may use (paper Sec. V-C2).
//!
//! For each statement we build the *index usage graph*: one vertex per
//! unique SQL parameter (or constant source) and per table alias; a
//! directed edge `src → alias` tagged `(index, predicates)` states that the
//! database can use data available at `src` to access `alias`'s table
//! through `index`. Enumerating topological sorts that start from the
//! always-available sources (parameters/constants) yields every index the
//! database might traverse — Fig. 8's red edges.

use std::collections::HashSet;
use std::sync::Arc;
use weseer_sqlir::cond::index_related_predicates;
use weseer_sqlir::{Catalog, IndexDef, Operand, Pred, Statement};

/// One possible index use: the index (or a full table scan when `None`)
/// with the predicates related to it.
#[derive(Debug, Clone)]
pub struct IndexUse {
    /// Table alias being accessed.
    pub alias: String,
    /// Table name.
    pub table: String,
    /// The index; `None` means no index is usable (full scan).
    pub index: Option<Arc<IndexDef>>,
    /// Predicates related to the index (empty for scans).
    pub preds: Vec<Pred>,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Vertex {
    /// All SQL parameters and constants (always available).
    Sources,
    /// A table alias.
    Alias(String),
}

#[derive(Debug, Clone)]
struct Edge {
    src: Vertex,
    dst: String, // alias
    index: Arc<IndexDef>,
}

/// An oracle answering "which index would the database actually use?" —
/// the paper's Sec. V-D future work of consulting the database's concrete
/// execution plan (`EXPLAIN`) instead of enumerating every possible
/// index. `None` means the oracle has no answer for this statement and
/// the enumeration result stands. `Sync` because the parallel fine-grained
/// phase consults the oracle from worker threads.
pub trait IndexOracle: Sync {
    /// The chosen `(alias, index name or None-for-scan)` per table access
    /// of `stmt`, or `None` when unknown.
    fn plan(&self, stmt: &Statement) -> Option<Vec<(String, Option<String>)>>;
}

/// Restrict enumerated index uses to an oracle's concrete plan.
pub fn refine_with_oracle(
    uses: Vec<IndexUse>,
    stmt: &Statement,
    oracle: &dyn IndexOracle,
) -> Vec<IndexUse> {
    let Some(plan) = oracle.plan(stmt) else {
        return uses;
    };
    uses.into_iter()
        .filter(|u| {
            plan.iter().any(|(alias, index)| {
                alias == &u.alias && *index == u.index.as_ref().map(|i| i.name.clone())
            })
        })
        .collect()
}

/// Infer all possible index uses for `stmt` (paper's
/// `InferPossibleIndexes`).
///
/// Aliases that no enumerated traversal can reach through an index are
/// reported with `index: None` (table scan).
pub fn infer_possible_indexes(stmt: &Statement, catalog: &Catalog) -> Vec<IndexUse> {
    let aliases = stmt.alias_map();
    let Some(qcond) = stmt.query_condition() else {
        // No conditions at all: every alias is a full scan.
        return aliases
            .into_iter()
            .map(|(alias, table)| IndexUse {
                alias,
                table,
                index: None,
                preds: vec![],
            })
            .collect();
    };

    // Build edges.
    let mut edges: Vec<Edge> = Vec::new();
    for pred in qcond.top_predicates() {
        for (alias, table) in &aliases {
            let Some(def) = catalog.table(table) else {
                continue;
            };
            let o = pred.oriented_for(alias);
            let Operand::Column { alias: a, column } = &o.lhs else {
                continue;
            };
            if a != alias {
                continue;
            }
            // Which indexes of this table cover the predicate's column?
            for idx in def.indexes.iter().filter(|i| i.columns.contains(column)) {
                // The edge's source: where the other operand's data comes
                // from.
                let src = match &o.rhs {
                    Operand::Param(_) | Operand::Const(_) => Vertex::Sources,
                    Operand::Column {
                        alias: src_alias, ..
                    } => {
                        if src_alias == alias {
                            continue; // self-referential predicate
                        }
                        Vertex::Alias(src_alias.clone())
                    }
                };
                edges.push(Edge {
                    src,
                    dst: alias.clone(),
                    index: Arc::new(idx.clone()),
                });
            }
        }
    }

    // Enumerate topological sorts starting from `Sources`; collect every
    // edge used by at least one sort. When no edge can extend a sort, the
    // database falls back to scanning one remaining table (indexes are
    // preferred — Sec. V-C2), whose data then feeds further edges.
    let alias_names: Vec<String> = aliases.iter().map(|(a, _)| a.clone()).collect();
    let mut usable: HashSet<(String, String)> = HashSet::new(); // (alias, index name)
    let mut scanned: HashSet<String> = HashSet::new();
    let mut visited: HashSet<String> = HashSet::new();
    enumerate(
        &alias_names,
        &edges,
        &mut visited,
        &mut usable,
        &mut scanned,
    );

    let mut out = Vec::new();
    for (alias, table) in &aliases {
        let Some(def) = catalog.table(table) else {
            continue;
        };
        for idx in &def.indexes {
            if usable.contains(&(alias.clone(), idx.name.clone())) {
                let preds = index_related_predicates(&qcond, idx, alias);
                out.push(IndexUse {
                    alias: alias.clone(),
                    table: table.clone(),
                    index: Some(Arc::new(idx.clone())),
                    preds,
                });
            }
        }
        if scanned.contains(alias) {
            out.push(IndexUse {
                alias: alias.clone(),
                table: table.clone(),
                index: None,
                preds: vec![],
            });
        }
    }
    out
}

/// DFS over partial topological orders; records edges usable at each step
/// and the aliases that must be scanned when no edge extends the order.
fn enumerate(
    aliases: &[String],
    edges: &[Edge],
    visited: &mut HashSet<String>,
    usable: &mut HashSet<(String, String)>,
    scanned: &mut HashSet<String>,
) {
    let mut extended = false;
    for e in edges {
        if visited.contains(&e.dst) {
            continue;
        }
        let src_ok = match &e.src {
            Vertex::Sources => true,
            Vertex::Alias(a) => visited.contains(a),
        };
        if !src_ok {
            continue;
        }
        extended = true;
        usable.insert((e.dst.clone(), e.index.name.clone()));
        visited.insert(e.dst.clone());
        enumerate(aliases, edges, visited, usable, scanned);
        visited.remove(&e.dst);
    }
    if !extended {
        let unvisited: Vec<String> = aliases
            .iter()
            .filter(|a| !visited.contains(*a))
            .cloned()
            .collect();
        for a in unvisited {
            scanned.insert(a.clone());
            visited.insert(a.clone());
            enumerate(aliases, edges, visited, usable, scanned);
            visited.remove(&a);
        }
    }
}

/// Per-alias grouping of possible index uses.
pub fn uses_for_alias<'a>(uses: &'a [IndexUse], alias: &str) -> Vec<&'a IndexUse> {
    uses.iter().filter(|u| u.alias == alias).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use weseer_sqlir::{parser::parse, Catalog, ColType, TableBuilder};

    fn catalog() -> Catalog {
        Catalog::new(vec![
            TableBuilder::new("Order")
                .col("ID", ColType::Int)
                .primary_key(&["ID"])
                .build()
                .unwrap(),
            TableBuilder::new("Product")
                .col("ID", ColType::Int)
                .col("QTY", ColType::Int)
                .primary_key(&["ID"])
                .build()
                .unwrap(),
            TableBuilder::new("OrderItem")
                .col("ID", ColType::Int)
                .col("O_ID", ColType::Int)
                .col("P_ID", ColType::Int)
                .col("QTY", ColType::Int)
                .primary_key(&["ID"])
                .foreign_key("O_ID", "Order", "ID")
                .foreign_key("P_ID", "Product", "ID")
                .build()
                .unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn fig8_q4_index_inference() {
        // Fig. 8: Q4 can use idx(OrderItem, sec, O_ID) from the parameter,
        // then the primary indexes of Order and Product. Notably,
        // idx(OrderItem, sec, P_ID) must NOT be used (the only edge into
        // OrderItem.P_ID would come from Product, which itself is only
        // reachable through OrderItem).
        let cat = catalog();
        let q4 = parse(
            "SELECT * FROM OrderItem oi \
             JOIN Order o ON o.ID = oi.O_ID \
             JOIN Product p ON p.ID = oi.P_ID \
             WHERE oi.O_ID = ?",
        )
        .unwrap();
        let uses = infer_possible_indexes(&q4, &cat);
        let names: Vec<(String, Option<String>)> = uses
            .iter()
            .map(|u| (u.alias.clone(), u.index.as_ref().map(|i| i.name.clone())))
            .collect();
        assert!(names.contains(&("oi".into(), Some("idx_orderitem_o_id".into()))));
        assert!(names.contains(&("o".into(), Some("PRIMARY".into()))));
        assert!(names.contains(&("p".into(), Some("PRIMARY".into()))));
        // P_ID index of OrderItem is unreachable from sources in any
        // topological sort that starts from the parameter.
        assert!(
            !names.contains(&("oi".into(), Some("idx_orderitem_p_id".into()))),
            "P_ID index should not be usable: {names:?}"
        );
        // No alias falls back to a table scan.
        assert!(uses.iter().all(|u| u.index.is_some()));
    }

    #[test]
    fn point_update_uses_primary() {
        let cat = catalog();
        let q6 = parse("UPDATE Product SET QTY = ? WHERE ID = ?").unwrap();
        let uses = infer_possible_indexes(&q6, &cat);
        assert_eq!(uses.len(), 1);
        let u = &uses[0];
        assert_eq!(u.index.as_ref().unwrap().name, "PRIMARY");
        assert_eq!(u.preds.len(), 1);
    }

    #[test]
    fn insert_condition_reaches_primary() {
        let cat = catalog();
        let ins = parse("INSERT INTO Order (ID) VALUES (?)").unwrap();
        let uses = infer_possible_indexes(&ins, &cat);
        assert!(uses
            .iter()
            .any(|u| u.index.as_ref().is_some_and(|i| i.name == "PRIMARY")));
    }

    #[test]
    fn unindexed_filter_falls_back_to_scan() {
        let cat = catalog();
        let q = parse("SELECT * FROM Product p WHERE p.QTY > ?").unwrap();
        let uses = infer_possible_indexes(&q, &cat);
        assert_eq!(uses.len(), 1);
        assert!(uses[0].index.is_none());
    }

    #[test]
    fn no_condition_is_full_scan() {
        let cat = catalog();
        let q = parse("SELECT * FROM Product p WHERE p.ID = p.ID").unwrap();
        // Self-referential predicate gives no usable edge.
        let uses = infer_possible_indexes(&q, &cat);
        assert!(uses.iter().all(|u| u.index.is_none()));
    }

    #[test]
    fn join_without_filter_scans_driving_table() {
        let cat = catalog();
        // No WHERE: OrderItem has no source edge, so it is scanned; Order
        // then becomes reachable through its primary index.
        let q = parse("SELECT * FROM OrderItem oi JOIN Order o ON o.ID = oi.O_ID").unwrap();
        let uses = infer_possible_indexes(&q, &cat);
        let oi = uses_for_alias(&uses, "oi");
        assert!(oi.iter().any(|u| u.index.is_none()), "oi must be scanned");
        let o = uses_for_alias(&uses, "o");
        assert!(
            o.iter()
                .any(|u| u.index.as_ref().is_some_and(|i| i.name == "PRIMARY")),
            "Order reachable via PRIMARY after scanning oi: {o:?}"
        );
    }
}

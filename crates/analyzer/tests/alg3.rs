//! Direct unit tests of the Alg. 3 conflict-condition generators, checked
//! by solving the produced formulas: the conditions must be satisfiable
//! exactly when a conflicting row can exist.

use weseer_analyzer::encode::{
    associated_cond, gen_conflict_cond, range_conflict_cond, unified_read_cond, unified_write_cond,
    Importer, Side,
};
use weseer_analyzer::locks::{gen_shared_locks, Granularity};
use weseer_concolic::{ResultRow, StackTrace, StmtRecord, SymValue};
use weseer_smt::{check, Ctx, SolveResult, SolverConfig, Sort};
use weseer_sqlir::{parser::parse, Catalog, ColType, TableBuilder, Value};

fn catalog() -> Catalog {
    Catalog::new(vec![TableBuilder::new("Product")
        .col("ID", ColType::Int)
        .col("QTY", ColType::Int)
        .primary_key(&["ID"])
        .build()
        .unwrap()])
    .unwrap()
}

/// A statement record whose parameters carry the given symbolic terms
/// from `src_ctx`.
fn record(sql: &str, params: Vec<SymValue>, rows: Vec<ResultRow>) -> StmtRecord {
    let is_empty = rows.is_empty();
    StmtRecord {
        index: 1,
        seq: 1,
        txn: 0,
        stmt: parse(sql).unwrap(),
        params,
        rows,
        is_empty,
        trigger: StackTrace::new(),
        sent_at: StackTrace::new(),
    }
}

#[test]
fn unified_read_binds_columns_to_r() {
    let cat = catalog();
    let mut src = Ctx::new();
    let pid = src.var("pid", Sort::Int);
    let rec = record(
        "SELECT * FROM Product p WHERE p.ID = ?",
        vec![SymValue::with_sym(Value::Int(3), pid)],
        vec![],
    );
    let mut dst = Ctx::new();
    let mut imp = Importer::new(&src, "A1.");
    let mut side = Side {
        rec: &rec,
        imp: &mut imp,
    };
    let t = unified_read_cond(&mut dst, &cat, &mut side, 1);
    assert_eq!(dst.display(t), "(r1.p.ID = A1.pid)");
}

#[test]
fn unified_write_disjoins_over_reader_aliases() {
    let cat = catalog();
    let mut src = Ctx::new();
    let qty = src.var("newqty", Sort::Int);
    let pid = src.var("wpid", Sort::Int);
    let rec = record(
        "UPDATE Product SET QTY = ? WHERE ID = ?",
        vec![
            SymValue::with_sym(Value::Int(5), qty),
            SymValue::with_sym(Value::Int(3), pid),
        ],
        vec![],
    );
    let mut dst = Ctx::new();
    let mut imp = Importer::new(&src, "A2.");
    let mut side = Side {
        rec: &rec,
        imp: &mut imp,
    };
    let aliases = vec!["p1".to_string(), "p2".to_string()];
    let t = unified_write_cond(&mut dst, &cat, &mut side, &aliases, "Product", 1);
    let rendered = dst.display(t);
    // Eq canonicalizes operand order, so match either direction.
    assert!(
        rendered.contains("r1.p1.ID = A2.wpid") || rendered.contains("A2.wpid = r1.p1.ID"),
        "{rendered}"
    );
    assert!(
        rendered.contains("r1.p2.ID = A2.wpid") || rendered.contains("A2.wpid = r1.p2.ID"),
        "{rendered}"
    );
    assert!(rendered.starts_with("(or"), "{rendered}");
}

#[test]
fn associated_cond_ties_r_to_result_symbols() {
    let cat = catalog();
    let mut src = Ctx::new();
    let id_sym = src.var("res1.row0.p.ID", Sort::Int);
    let rec = record(
        "SELECT * FROM Product p WHERE p.QTY >= ?",
        vec![SymValue::concrete(1i64)],
        vec![ResultRow {
            cols: vec![
                (
                    "p.ID".to_string(),
                    SymValue::with_sym(Value::Int(10), id_sym),
                ),
                ("p.QTY".to_string(), SymValue::concrete(7i64)),
            ],
        }],
    );
    let mut dst = Ctx::new();
    let mut imp = Importer::new(&src, "A1.");
    let mut side = Side {
        rec: &rec,
        imp: &mut imp,
    };
    let t = associated_cond(&mut dst, &cat, &mut side, 2);
    let rendered = dst.display(t);
    assert!(
        rendered.contains("r2.p.ID = A1.res1.row0.p.ID"),
        "{rendered}"
    );
    assert!(rendered.contains("r2.p.QTY = 7"), "{rendered}");
}

#[test]
fn empty_result_associated_cond_is_true() {
    let cat = catalog();
    let src = Ctx::new();
    let rec = record(
        "SELECT * FROM Product p WHERE p.ID = ?",
        vec![SymValue::concrete(1i64)],
        vec![],
    );
    let mut dst = Ctx::new();
    let mut imp = Importer::new(&src, "A1.");
    let mut side = Side {
        rec: &rec,
        imp: &mut imp,
    };
    let t = associated_cond(&mut dst, &cat, &mut side, 1);
    assert_eq!(dst.display(t), "true");
}

#[test]
fn range_enlargement_admits_neighbours() {
    // Shared range lock from `QTY >= 5`: the enlarged condition must admit
    // a row with QTY = 4 (the actual gap can cover it) via the fresh
    // boundary variable.
    let cat = catalog();
    let src = Ctx::new();
    let rec = record(
        "SELECT * FROM Product p WHERE p.QTY >= 5 AND p.ID >= 0",
        vec![],
        vec![],
    );
    let locks = gen_shared_locks(&rec.stmt, "Product", true, &cat, None);
    let range = locks
        .iter()
        .find(|l| l.granularity == Granularity::Range)
        .expect("empty read takes a range lock");
    let mut dst = Ctx::new();
    let mut imp = Importer::new(&src, "A1.");
    let mut side = Side {
        rec: &rec,
        imp: &mut imp,
    };
    let enlarged = range_conflict_cond(&mut dst, &cat, &mut side, range, 1);
    // Conjoin with "the row has QTY = 4" and solve: must be SAT — the
    // gap's real extent can reach below the predicate's bound.
    let qty = dst.var("r1.p.QTY", Sort::Int);
    let four = dst.int(4);
    let is_four = dst.eq(qty, four);
    let f = dst.and([enlarged, is_four]);
    assert!(matches!(
        check(&mut dst, f, &SolverConfig::default()),
        SolveResult::Sat(_)
    ));
}

#[test]
fn conflict_cond_sat_when_params_can_collide() {
    let cat = catalog();
    let mut src_r = Ctx::new();
    let rpid = src_r.var("pid", Sort::Int);
    let reader = record(
        "SELECT * FROM Product p WHERE p.ID = ?",
        vec![SymValue::with_sym(Value::Int(3), rpid)],
        vec![],
    );
    let mut src_w = Ctx::new();
    let wpid = src_w.var("pid", Sort::Int);
    let writer = record(
        "UPDATE Product SET QTY = ? WHERE ID = ?",
        vec![
            SymValue::concrete(0i64),
            SymValue::with_sym(Value::Int(3), wpid),
        ],
        vec![],
    );
    let mut dst = Ctx::new();
    let mut imp_r = Importer::new(&src_r, "A1.");
    let mut imp_w = Importer::new(&src_w, "A2.");
    let mut r_side = Side {
        rec: &reader,
        imp: &mut imp_r,
    };
    let mut w_side = Side {
        rec: &writer,
        imp: &mut imp_w,
    };
    let cond = gen_conflict_cond(
        &mut dst,
        &cat,
        &mut w_side,
        &mut r_side,
        "Product",
        1,
        true,
        None,
    );
    match check(&mut dst, cond, &SolverConfig::default()) {
        SolveResult::Sat(m) => {
            // The witness picks colliding ids.
            assert_eq!(m.get_int("A1.pid"), m.get_int("A2.pid"));
        }
        other => panic!("expected SAT, got {other:?}"),
    }
}

#[test]
fn conflict_cond_unsat_for_disjoint_constants() {
    let cat = catalog();
    let src_r = Ctx::new();
    let reader = record("SELECT * FROM Product p WHERE p.ID = 10", vec![], vec![]);
    let src_w = Ctx::new();
    let writer = record("UPDATE Product SET QTY = 0 WHERE ID = 20", vec![], vec![]);
    let mut dst = Ctx::new();
    let mut imp_r = Importer::new(&src_r, "A1.");
    let mut imp_w = Importer::new(&src_w, "A2.");
    let mut r_side = Side {
        rec: &reader,
        imp: &mut imp_r,
    };
    let mut w_side = Side {
        rec: &writer,
        imp: &mut imp_w,
    };
    let cond = gen_conflict_cond(
        &mut dst,
        &cat,
        &mut w_side,
        &mut r_side,
        "Product",
        1,
        true,
        None,
    );
    assert!(matches!(
        check(&mut dst, cond, &SolverConfig::default()),
        SolveResult::Unsat
    ));
}

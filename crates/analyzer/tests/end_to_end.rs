//! End-to-end analyzer tests: collect real traces through the ORM +
//! concolic driver over the storage engine, then diagnose them — the full
//! Fig. 2 pipeline on the Fig. 1 running example.

use weseer_analyzer::{coarse_cycle_count, diagnose, AnalyzerConfig, CollectedTrace};
use weseer_concolic::{loc, shared, take_ctx, ExecMode, SymValue};
use weseer_db::Database;
use weseer_orm::{LazyCollection, OrmSession};
use weseer_sqlir::{parser::parse, Catalog, CmpOp, ColType, TableBuilder, Value};

fn fig1_catalog() -> Catalog {
    Catalog::new(vec![
        TableBuilder::new("Order")
            .col("ID", ColType::Int)
            .primary_key(&["ID"])
            .build()
            .unwrap(),
        TableBuilder::new("Product")
            .col("ID", ColType::Int)
            .col("QTY", ColType::Int)
            .primary_key(&["ID"])
            .build()
            .unwrap(),
        TableBuilder::new("OrderItem")
            .col("ID", ColType::Int)
            .col("O_ID", ColType::Int)
            .col("P_ID", ColType::Int)
            .col("QTY", ColType::Int)
            .primary_key(&["ID"])
            .foreign_key("O_ID", "Order", "ID")
            .foreign_key("P_ID", "Product", "ID")
            .build()
            .unwrap(),
    ])
    .unwrap()
}

fn seeded_db() -> Database {
    let db = Database::new(fig1_catalog());
    db.seed("Order", vec![vec![Value::Int(1)]]);
    db.seed("Product", vec![vec![Value::Int(10), Value::Int(100)]]);
    db.seed(
        "OrderItem",
        vec![vec![
            Value::Int(100),
            Value::Int(1),
            Value::Int(10),
            Value::Int(3),
        ]],
    );
    db
}

/// Run the Fig. 1 `finishOrder` API as its unit test and collect a trace.
fn collect_finish_order(db: &Database) -> CollectedTrace {
    let engine = shared(ExecMode::Concolic);
    engine.borrow_mut().start_concolic();
    let mut session = OrmSession::new(engine.clone(), db.session(), db.catalog().clone());

    let order_id = engine.borrow_mut().make_symbolic("order_id", Value::Int(1));
    session.begin();
    let _o = session
        .find("Order", &order_id, loc!("finishOrder"))
        .unwrap()
        .unwrap();
    let q4 = parse(
        "SELECT * FROM OrderItem oi \
         JOIN Order o ON o.ID = oi.O_ID \
         JOIN Product p ON p.ID = oi.P_ID \
         WHERE oi.O_ID = ?",
    )
    .unwrap();
    let mut items = LazyCollection::new(q4, vec![order_id.clone()]);
    let rows = items
        .get_or_load(&mut session, loc!("finishOrder"))
        .unwrap()
        .to_vec();
    for row in &rows {
        let oi = &row["oi"];
        let p = &row["p"];
        let p_qty = p.get("QTY");
        let oi_qty = oi.get("QTY");
        let cond = engine.borrow_mut().cmp(CmpOp::Ge, &p_qty, &oi_qty);
        if engine.borrow_mut().branch(&cond, loc!("updateQuantity")) {
            let new_qty = engine.borrow_mut().sub(&p_qty, &oi_qty);
            p.set(&engine, "QTY", new_qty, loc!("updateQuantity"));
        }
    }
    session.commit(loc!("finishOrder")).unwrap();
    let trace = session.driver_mut().take_trace("finishOrder");
    drop(session);
    let ctx = take_ctx(&engine);
    CollectedTrace::new(trace, ctx)
}

#[test]
fn finish_order_deadlock_confirmed() {
    let db = seeded_db();
    let collected = collect_finish_order(&db);
    let diagnosis = diagnose(db.catalog(), &[collected], &AnalyzerConfig::default());
    assert!(
        !diagnosis.deadlocks.is_empty(),
        "the Fig. 4 cycle must be confirmed; stats: {:?}",
        diagnosis.stats
    );
    let r = &diagnosis.deadlocks[0];
    assert!(r.involves("finishOrder", "finishOrder"));
    // The conflict is on Product: both instances hold the S lock from Q4
    // and wait for the X lock of Q6.
    assert!(r.tables().contains(&"Product".to_string()), "{r}");
    // Sec. VI: the UPDATE's trigger is updateQuantity (line 19), not the
    // commit that sent it.
    let upd = r
        .statements
        .iter()
        .find(|s| s.sql.starts_with("UPDATE"))
        .expect("update statement in cycle");
    assert!(upd.trigger.mentions("updateQuantity"), "{}", upd.trigger);
    // The witness model includes the symbolic API inputs of both
    // instances.
    assert!(
        r.model.iter().any(|(k, _)| k == "A1.order_id"),
        "model: {:?}",
        r.model
    );
    assert!(diagnosis.stats.smt_sat >= 1);
}

#[test]
fn no_conflict_no_deadlock() {
    // An API that only reads can never deadlock with itself.
    let db = seeded_db();
    let engine = shared(ExecMode::Concolic);
    engine.borrow_mut().start_concolic();
    let mut session = OrmSession::new(engine.clone(), db.session(), db.catalog().clone());
    let id = engine.borrow_mut().make_symbolic("pid", Value::Int(10));
    session.begin();
    session.find("Product", &id, loc!("browse")).unwrap();
    session.commit(loc!("browse")).unwrap();
    let trace = session.driver_mut().take_trace("browse");
    drop(session);
    let collected = CollectedTrace::new(trace, take_ctx(&engine));
    let d = diagnose(db.catalog(), &[collected], &AnalyzerConfig::default());
    assert!(d.deadlocks.is_empty());
    assert_eq!(
        d.stats.pairs_after_phase1, 0,
        "phase 1 must filter the pair"
    );
}

#[test]
fn concretely_disjoint_parameters_are_unsat() {
    // Two APIs that pin *different* product ids with concrete parameters:
    // the conflict condition forces r.e.ID = 10 ∧ r.e.ID = 20 → UNSAT, so
    // the cross-API pair is refuted while each self-pair still deadlocks.
    // (Symbolic result values stay free — the paper deliberately lets the
    // solver choose the triggering database state — so refutation must
    // come from parameters and path conditions, as here.)
    let db = seeded_db();
    db.seed("Product", vec![vec![Value::Int(20), Value::Int(50)]]);

    let collect = |pid: i64| -> CollectedTrace {
        let engine = shared(ExecMode::Concolic);
        engine.borrow_mut().start_concolic();
        let mut session = OrmSession::new(engine.clone(), db.session(), db.catalog().clone());
        let id = SymValue::concrete(pid);
        session.begin();
        let p = session
            .find("Product", &id, loc!("touch"))
            .unwrap()
            .unwrap();
        let q = p.get("QTY");
        let one = SymValue::concrete(1i64);
        let newq = engine.borrow_mut().sub(&q, &one);
        p.set(&engine, "QTY", newq, loc!("touch"));
        session.commit(loc!("touch")).unwrap();
        let trace = session.driver_mut().take_trace(format!("touch{pid}"));
        drop(session);
        CollectedTrace::new(trace, take_ctx(&engine))
    };

    let t1 = collect(10);
    let t2 = collect(20);
    let d = diagnose(db.catalog(), &[t1, t2], &AnalyzerConfig::default());
    assert!(
        !d.deadlocks.iter().any(|r| r.involves("touch10", "touch20")),
        "concretely disjoint pair wrongly reported: {:?}",
        d.deadlocks
            .iter()
            .map(|r| r.cycle.clone())
            .collect::<Vec<_>>()
    );
    // Self-pairs (two concurrent touch10 calls) still deadlock: S then X
    // on the same row.
    assert!(d.deadlocks.iter().any(|r| r.involves("touch10", "touch10")));
    assert!(d.stats.smt_unsat >= 1, "stats: {:?}", d.stats);
}

#[test]
fn coarse_baseline_overreports() {
    let db = seeded_db();
    let collected = collect_finish_order(&db);
    let fine = diagnose(db.catalog(), &[collected], &AnalyzerConfig::default());
    let collected = collect_finish_order(&db);
    let coarse = coarse_cycle_count(&[collected]);
    assert!(
        coarse >= fine.deadlocks.len(),
        "coarse cycles ({coarse}) must be at least confirmed deadlocks ({})",
        fine.deadlocks.len()
    );
    assert!(coarse >= 1);
}

#[test]
fn path_conditions_can_refute_cycles() {
    // A transaction that only updates when qty > 1000 — the path condition
    // contradicts the seeded database result (qty = 100 recorded in the
    // trace result symbols)… since res symbols are free variables, the
    // solver may still pick 1001. What *is* refutable: a branch condition
    // on the *parameter* contradicting the recorded WHERE equality. We
    // build: branch(order_id > 500) taken FALSE (order_id = 1), so the
    // path condition A1.order_id <= 500 is recorded; the conflict condition
    // requires A1.order_id = A2.order_id; and a second branch in instance
    // B... both instances run the same code, so both get <= 500 — still
    // SAT. To see UNSAT via path conditions we instead record the branch
    // qty >= oi_qty (taken) plus an artificial contradicting branch
    // qty < oi_qty (not taken) — impossible in one execution. So this test
    // asserts the machinery: UNSAT count increases when a fabricated
    // contradictory path condition is injected.
    let db = seeded_db();
    let mut collected = collect_finish_order(&db);
    // Fabricate a contradiction: append the negation of an existing PC.
    if let Some(pc) = collected.trace.path_conds.first().cloned() {
        let neg = collected.ctx.not(pc.term);
        let mut fake = pc;
        fake.term = neg;
        collected.trace.path_conds.push(fake);
    }
    let d = diagnose(db.catalog(), &[collected], &AnalyzerConfig::default());
    assert!(
        d.deadlocks.is_empty(),
        "contradictory path conditions must refute"
    );
    assert!(d.stats.smt_unsat >= 1);
}

//! Properties of the pair pipeline on randomly generated trace sets:
//!
//! 1. the diagnosis — rendered reports, their order, and every funnel
//!    counter — is identical for `threads = 1` and `threads = 4` (the
//!    deterministic-merge contract of `run_ordered`), and
//! 2. the phase-1 pair generator emits exactly the pairs a brute-force
//!    enumeration of the transaction-level conflict predicate finds (and
//!    the full pair space when the filter is skipped).

use proptest::prelude::*;
use weseer_analyzer::{
    diagnose, generate_pairs, AnalyzerConfig, CollectedTrace, DiagnosisStats, PairJob,
};
use weseer_concolic::{EngineStats, ResultRow, StackTrace, StmtRecord, SymValue, Trace, TxnTrace};
use weseer_smt::{Ctx, Sort};
use weseer_sqlir::{parser::parse, Catalog, ColType, TableBuilder, Value};

/// Three small single-column tables the random statements draw from.
fn catalog() -> Catalog {
    Catalog::new(
        (0..3)
            .map(|i| {
                TableBuilder::new(format!("T{i}"))
                    .col("ID", ColType::Int)
                    .col("VAL", ColType::Int)
                    .primary_key(&["ID"])
                    .build()
                    .unwrap()
            })
            .collect(),
    )
    .unwrap()
}

/// One random statement: which table, read or write, and the concrete
/// parameter values (each also bound to a fresh symbolic variable).
#[derive(Debug, Clone)]
struct GenStmt {
    table: usize,
    write: bool,
    key: i64,
}

/// A random trace: transactions as lists of statements.
type GenTrace = Vec<Vec<GenStmt>>;

fn stmt_strategy() -> impl Strategy<Value = GenStmt> {
    (0usize..3, any::<bool>(), 0i64..3).prop_map(|(table, write, key)| GenStmt {
        table,
        write,
        key,
    })
}

fn trace_strategy() -> impl Strategy<Value = GenTrace> {
    proptest::collection::vec(
        proptest::collection::vec(stmt_strategy(), 1..4),
        1..3, // 1–2 transactions per trace
    )
}

/// Materialize a generated trace as a real `CollectedTrace` with symbolic
/// parameters, following the engine's record layout.
fn build_trace(api: usize, gen: &GenTrace) -> CollectedTrace {
    let mut ctx = Ctx::new();
    let mut statements = Vec::new();
    let mut txns = Vec::new();
    let mut seq = 0u64;
    for (txn_id, stmts) in gen.iter().enumerate() {
        let mut stmt_indexes = Vec::new();
        for g in stmts {
            let index = statements.len() + 1;
            let t = format!("T{}", g.table);
            let (sql, params) = if g.write {
                let v = ctx.var(format!("p{api}_{index}v"), Sort::Int);
                let k = ctx.var(format!("p{api}_{index}k"), Sort::Int);
                (
                    format!("UPDATE {t} SET VAL = ? WHERE ID = ?"),
                    vec![
                        SymValue::with_sym(Value::Int(g.key + 10), v),
                        SymValue::with_sym(Value::Int(g.key), k),
                    ],
                )
            } else {
                let k = ctx.var(format!("p{api}_{index}k"), Sort::Int);
                (
                    format!("SELECT * FROM {t} x WHERE x.ID = ?"),
                    vec![SymValue::with_sym(Value::Int(g.key), k)],
                )
            };
            // Reads return one matching row (alias-qualified columns);
            // writes return no rows.
            let rows = if g.write {
                vec![]
            } else {
                vec![ResultRow {
                    cols: vec![
                        ("x.ID".to_string(), SymValue::concrete(Value::Int(g.key))),
                        ("x.VAL".to_string(), SymValue::concrete(Value::Int(0))),
                    ],
                }]
            };
            seq += 1;
            let is_empty = rows.is_empty();
            stmt_indexes.push(statements.len());
            statements.push(StmtRecord {
                index,
                seq,
                txn: txn_id,
                stmt: parse(&sql).unwrap(),
                params,
                rows,
                is_empty,
                trigger: StackTrace::new(),
                sent_at: StackTrace::new(),
            });
        }
        txns.push(TxnTrace {
            id: txn_id,
            stmt_indexes,
            committed: true,
        });
    }
    CollectedTrace::new(
        Trace {
            api: format!("Api{api}"),
            statements,
            txns,
            path_conds: vec![],
            unique_ids: vec![],
            stats: EngineStats::default(),
        },
        ctx,
    )
}

/// The deterministic projection of the stats (wall times excluded).
fn funnel(s: &DiagnosisStats) -> [usize; 7] {
    [
        s.txn_pairs,
        s.pairs_after_phase1,
        s.coarse_cycles,
        s.fine_candidates,
        s.smt_sat,
        s.smt_unsat,
        s.smt_unknown,
    ]
}

/// The transaction-level conflict predicate, straight from the paper:
/// some table is accessed by both transactions and written by at least
/// one of them.
fn conflicts(a: &Trace, a_txn: usize, b: &Trace, b_txn: usize) -> bool {
    let written = |t: &Trace, txn: usize| -> Vec<String> {
        t.statements_of(txn)
            .iter()
            .filter_map(|s| s.stmt.written_table().map(str::to_string))
            .collect()
    };
    let (ta, tb) = (a.tables_of(a_txn), b.tables_of(b_txn));
    let (wa, wb) = (written(a, a_txn), written(b, b_txn));
    ta.iter()
        .any(|t| tb.contains(t) && (wa.contains(t) || wb.contains(t)))
}

/// Brute-force phase 1: enumerate the whole pair space (legacy loop order)
/// and apply the predicate per pair.
fn brute_force_pairs(traces: &[CollectedTrace], skip_filter: bool) -> (Vec<PairJob>, usize) {
    let mut jobs = Vec::new();
    let mut total = 0usize;
    for a in 0..traces.len() {
        for b in a..traces.len() {
            for a_txn in 0..traces[a].trace.txns.len() {
                let b_start = if a == b { a_txn } else { 0 };
                for b_txn in b_start..traces[b].trace.txns.len() {
                    total += 1;
                    if skip_filter || conflicts(&traces[a].trace, a_txn, &traces[b].trace, b_txn) {
                        jobs.push(PairJob { a, b, a_txn, b_txn });
                    }
                }
            }
        }
    }
    jobs.sort_unstable();
    (jobs, total)
}

// The generated workloads are not vacuous: over the deterministic 12-case
// run the diagnoses sum to 16 coarse cycles, 12 fine candidates and 12
// SAT verdicts, so the equality below covers every pipeline stage.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn generator_matches_brute_force(gens in proptest::collection::vec(trace_strategy(), 1..4)) {
        let traces: Vec<CollectedTrace> = gens
            .iter()
            .enumerate()
            .map(|(i, g)| build_trace(i, g))
            .collect();
        for skip_filter in [false, true] {
            let set = generate_pairs(&traces, skip_filter);
            let (expected, total) = brute_force_pairs(&traces, skip_filter);
            prop_assert_eq!(set.total, total, "pair-space size (skip={})", skip_filter);
            prop_assert_eq!(&set.jobs, &expected, "pair set (skip={})", skip_filter);
        }
    }

    #[test]
    fn parallel_diagnosis_equals_sequential(gens in proptest::collection::vec(trace_strategy(), 1..3)) {
        let catalog = catalog();
        let traces: Vec<CollectedTrace> = gens
            .iter()
            .enumerate()
            .map(|(i, g)| build_trace(i, g))
            .collect();
        let run = |threads: usize| {
            diagnose(
                &catalog,
                &traces,
                &AnalyzerConfig {
                    threads,
                    ..AnalyzerConfig::default()
                },
            )
        };
        let seq = run(1);
        let par = run(4);
        prop_assert_eq!(funnel(&seq.stats), funnel(&par.stats));
        let seq_reports: Vec<String> = seq.deadlocks.iter().map(|r| r.to_string()).collect();
        let par_reports: Vec<String> = par.deadlocks.iter().map(|r| r.to_string()).collect();
        prop_assert_eq!(seq_reports, par_reports);
    }
}

//! A minimal JSON value with a deterministic writer and a strict parser.
//!
//! The workspace is std-only, so the store carries its own ~200-line JSON
//! layer instead of serde. Two deliberate simplifications:
//!
//! * numbers are kept as **raw token strings** (`Json::Num("3.25")`), never
//!   converted through `f64`, so values round-trip byte-exactly;
//! * objects preserve insertion order and the writer emits exactly the
//!   stored order with no whitespace, so a value serializes to one
//!   canonical line.
//!
//! String escaping matches the witness exporter's rules: `"` `\`
//! `\n` `\r` `\t` get two-character escapes, all other control characters
//! `\u00XX`.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw token.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An unsigned integer value.
    pub fn u64(n: u64) -> Json {
        Json::Num(n.to_string())
    }

    /// A signed integer value.
    pub fn i64(n: i64) -> Json {
        Json::Num(n.to_string())
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number token parsed as `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// The number token parsed as `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Serialize to a single canonical line (no whitespace).
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => out.push_str(n),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Serialize to a fresh string.
    pub fn to_line(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Parse one JSON document; trailing garbage is an error.
    pub fn parse(input: &str) -> Result<Json, String> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let value = parse_value(input, bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing input at byte {pos}"));
        }
        Ok(value)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(input: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(input, bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(input, bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    other => return Err(format!("expected ',' or ']', got {other:?}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(input, bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(input, bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    other => return Err(format!("expected ',' or '}}', got {other:?}")),
                }
            }
        }
        Some(_) => parse_number(input, bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(input: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    if *pos == start {
        return Err(format!("expected a value at byte {start}"));
    }
    Ok(Json::Num(input[start..*pos].to_string()))
}

fn parse_string(input: &str, bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected '\"' at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = input
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        out.push(char::from_u32(code).ok_or("surrogate \\u escape")?);
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one full UTF-8 character.
                let rest = &input[*pos..];
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_canonically() {
        let v = Json::Obj(vec![
            ("kind".into(), Json::str("smt")),
            ("n".into(), Json::u64(42)),
            ("x".into(), Json::Num("-3.25".into())),
            (
                "arr".into(),
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::str("a\"b\n")]),
            ),
        ]);
        let line = v.to_line();
        assert_eq!(
            line,
            r#"{"kind":"smt","n":42,"x":-3.25,"arr":[null,true,"a\"b\n"]}"#
        );
        let back = Json::parse(&line).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.to_line(), line);
    }

    #[test]
    fn numbers_stay_raw() {
        // 0.1 + f64 round-trip pitfalls never apply: the token is kept.
        let v = Json::parse("[0.100000000000000005551, 9007199254740993]").unwrap();
        assert_eq!(v.to_line(), "[0.100000000000000005551,9007199254740993]");
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn control_chars_escape_and_parse() {
        let v = Json::str("\u{0001}\t");
        let line = v.to_line();
        assert_eq!(line, "\"\\u0001\\t\"");
        assert_eq!(Json::parse(&line).unwrap(), v);
    }

    #[test]
    fn lookup_helpers() {
        let v = Json::parse(r#"{"a":1,"b":"x","c":[true],"d":-7}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("c").unwrap().as_arr().unwrap().len(), 1);
        assert_eq!(v.get("d").unwrap().as_i64(), Some(-7));
        assert!(v.get("missing").is_none());
    }
}

//! Exact JSON codecs for solver verdicts and models.
//!
//! Warm runs must be byte-identical to cold runs, so the codec cannot lose
//! information: integers ride as decimal strings, reals as the hex bit
//! pattern of their `f64` (`to_bits`), and array-read entries are emitted
//! in a sorted order so the same model always serializes to the same line.

use crate::json::Json;
use weseer_smt::{Model, ModelKey, ModelValue, SolveResult};

fn value_to_json(v: &ModelValue) -> Json {
    match v {
        ModelValue::Int(i) => Json::Arr(vec![Json::str("i"), Json::str(i.to_string())]),
        ModelValue::Real(x) => Json::Arr(vec![
            Json::str("r"),
            Json::str(format!("{:016x}", x.to_bits())),
        ]),
        ModelValue::Str(s) => Json::Arr(vec![Json::str("s"), Json::str(s.clone())]),
        ModelValue::Bool(b) => Json::Arr(vec![Json::str("b"), Json::Bool(*b)]),
    }
}

fn value_from_json(j: &Json) -> Option<ModelValue> {
    let arr = j.as_arr()?;
    match (arr[0].as_str()?, arr.get(1)?) {
        ("i", v) => Some(ModelValue::Int(v.as_str()?.parse().ok()?)),
        ("r", v) => Some(ModelValue::Real(f64::from_bits(
            u64::from_str_radix(v.as_str()?, 16).ok()?,
        ))),
        ("s", v) => Some(ModelValue::Str(v.as_str()?.to_string())),
        ("b", v) => Some(ModelValue::Bool(v.as_bool()?)),
        _ => None,
    }
}

fn key_to_json(k: &ModelKey) -> Json {
    match k {
        ModelKey::Int(i) => Json::Arr(vec![Json::str("i"), Json::str(i.to_string())]),
        ModelKey::Real(bits) => Json::Arr(vec![Json::str("r"), Json::str(format!("{bits:016x}"))]),
        ModelKey::Str(s) => Json::Arr(vec![Json::str("s"), Json::str(s.clone())]),
    }
}

fn key_from_json(j: &Json) -> Option<ModelKey> {
    let arr = j.as_arr()?;
    match (arr[0].as_str()?, arr.get(1)?) {
        ("i", v) => Some(ModelKey::Int(v.as_str()?.parse().ok()?)),
        ("r", v) => Some(ModelKey::Real(u64::from_str_radix(v.as_str()?, 16).ok()?)),
        ("s", v) => Some(ModelKey::Str(v.as_str()?.to_string())),
        _ => None,
    }
}

/// Serialize a model losslessly.
pub fn model_to_json(m: &Model) -> Json {
    let values: Vec<Json> = m
        .iter()
        .map(|(name, v)| Json::Arr(vec![Json::str(name.clone()), value_to_json(v)]))
        .collect();
    let mut selects: Vec<Json> = m
        .selects()
        .map(|((name, key), b)| {
            Json::Arr(vec![
                Json::str(name.clone()),
                key_to_json(key),
                Json::Bool(*b),
            ])
        })
        .collect();
    // The model's select table iterates in hash order; sort by the
    // serialized entry so the line is canonical.
    selects.sort_by_key(|j| j.to_line());
    Json::Obj(vec![
        ("values".into(), Json::Arr(values)),
        ("selects".into(), Json::Arr(selects)),
    ])
}

/// Rebuild a model serialized by [`model_to_json`].
pub fn model_from_json(j: &Json) -> Option<Model> {
    let mut values = Vec::new();
    for entry in j.get("values")?.as_arr()? {
        let pair = entry.as_arr()?;
        values.push((pair[0].as_str()?.to_string(), value_from_json(&pair[1])?));
    }
    let mut selects = Vec::new();
    for entry in j.get("selects")?.as_arr()? {
        let triple = entry.as_arr()?;
        selects.push((
            (triple[0].as_str()?.to_string(), key_from_json(&triple[1])?),
            triple[2].as_bool()?,
        ));
    }
    Some(Model::from_parts(values, selects))
}

/// Serialize a solver verdict (SAT verdicts carry their model).
pub fn verdict_to_json(r: &SolveResult) -> Json {
    match r {
        SolveResult::Sat(m) => Json::Obj(vec![
            ("v".into(), Json::str("sat")),
            ("m".into(), model_to_json(m)),
        ]),
        SolveResult::Unsat => Json::Obj(vec![("v".into(), Json::str("unsat"))]),
        SolveResult::Unknown => Json::Obj(vec![("v".into(), Json::str("unknown"))]),
    }
}

/// Rebuild a verdict serialized by [`verdict_to_json`].
pub fn verdict_from_json(j: &Json) -> Option<SolveResult> {
    match j.get("v")?.as_str()? {
        "sat" => Some(SolveResult::Sat(model_from_json(j.get("m")?)?)),
        "unsat" => Some(SolveResult::Unsat),
        "unknown" => Some(SolveResult::Unknown),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weseer_smt::{check, Ctx, SolverConfig, Sort};

    #[test]
    fn verdict_round_trip_is_byte_exact() {
        let mut ctx = Ctx::new();
        let x = ctx.var("v0", Sort::Int);
        let three = ctx.int(3);
        let f = ctx.gt(x, three);
        let r = check(&mut ctx, f, &SolverConfig::default());
        assert!(r.is_sat());
        let line = verdict_to_json(&r).to_line();
        let back = verdict_from_json(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(verdict_to_json(&back).to_line(), line);
        assert_eq!(
            back.model().unwrap().get_int("v0"),
            r.model().unwrap().get_int("v0")
        );
    }

    #[test]
    fn real_values_round_trip_bit_for_bit() {
        let m = Model::from_parts(
            [
                ("a".to_string(), ModelValue::Real(0.1 + 0.2)),
                ("b".to_string(), ModelValue::Real(-0.0)),
                ("c".to_string(), ModelValue::Str("x\"y".into())),
            ],
            [(("arr".to_string(), ModelKey::Int(-5)), true)],
        );
        let line = model_to_json(&m).to_line();
        let back = model_from_json(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(model_to_json(&back).to_line(), line);
        match (back.get("a"), m.get("a")) {
            (Some(ModelValue::Real(x)), Some(ModelValue::Real(y))) => {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            other => panic!("expected reals, got {other:?}"),
        }
    }

    #[test]
    fn unsat_and_unknown_round_trip() {
        for r in [SolveResult::Unsat, SolveResult::Unknown] {
            let line = verdict_to_json(&r).to_line();
            let back = verdict_from_json(&Json::parse(&line).unwrap()).unwrap();
            assert_eq!(verdict_to_json(&back).to_line(), line);
        }
    }
}

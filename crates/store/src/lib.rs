//! # weseer-store
//!
//! The persistence layer behind WeSEER's incremental warm starts: a
//! single-file, append-only JSON-lines store with an in-memory index,
//! std-only like the rest of the workspace.
//!
//! ## Data model
//!
//! Every record is **content-addressed** along two axes:
//!
//! * a **site** — *where* the result belongs (a canonical-formula hash, a
//!   `fingerprint:txn` prefix id, a pair of trace fingerprints…);
//! * a **content key** — *what* the inputs were when the result was
//!   computed (solver/tier configuration, lock-model version, the
//!   fingerprints themselves).
//!
//! [`Store::get`] classifies a lookup as [`Lookup::Hit`] (site known,
//! content matches — reuse the value), [`Lookup::Stale`] (site known but
//! the inputs changed — recompute and [`Store::put`] the replacement), or
//! [`Lookup::Miss`] (never seen). Each outcome bumps `store.{hit,stale,
//! miss}` plus a per-kind variant (`store.hit.pair3`, …) so tests can
//! assert *exactly which* entries a dirtied trace invalidates.
//!
//! ## File format
//!
//! Line 1 is the header `{"weseer_store":1}`; every other line is one
//! record `{"kind":…,"site":…,"content":…,"value":…}`. The file is only
//! ever appended to — a re-recorded site supersedes its earlier lines on
//! load (counted in `store.evicted`) — and [`Store::flush`] appends the
//! session's new or changed records in sorted order, so an unchanged warm
//! run leaves the file untouched.

pub mod codec;
pub mod json;

use crate::json::Json;
use std::collections::{BTreeSet, HashMap};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Store header line (schema version 1).
const HEADER: &str = "{\"weseer_store\":1}";

/// The outcome of a [`Store::get`].
#[derive(Debug, Clone, PartialEq)]
pub enum Lookup {
    /// Site known and the content key matches: the stored value applies.
    Hit(Json),
    /// Site known but recorded under a different content key: the inputs
    /// changed, recompute.
    Stale,
    /// Site never recorded.
    Miss,
}

#[derive(Debug)]
struct Entry {
    content: String,
    value: Json,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<(String, String), Entry>,
    /// Keys added or changed since open, flushed in sorted order.
    dirty: BTreeSet<(String, String)>,
}

/// A single-file persistent store (thread-safe; share behind an `Arc`).
#[derive(Debug)]
pub struct Store {
    path: PathBuf,
    inner: Mutex<Inner>,
}

impl Store {
    /// Open (or create on first [`Store::flush`]) the store at `path`.
    ///
    /// Superseded lines — an old value for a site that a later line
    /// re-records — are counted in `store.evicted`.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Store> {
        let path = path.as_ref().to_path_buf();
        let mut inner = Inner::default();
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                let mut lines = text.lines();
                match lines.next() {
                    None => {}
                    Some(HEADER) => {}
                    Some(other) => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("{}: not a weseer store (header {other:?})", path.display()),
                        ));
                    }
                }
                let mut evicted = 0u64;
                for (n, line) in lines.enumerate() {
                    let bad = |why: &str| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("{}:{}: {why}", path.display(), n + 2),
                        )
                    };
                    let record = Json::parse(line).map_err(|e| bad(&e))?;
                    let field = |k: &str| {
                        record
                            .get(k)
                            .and_then(Json::as_str)
                            .map(str::to_string)
                            .ok_or_else(|| bad(&format!("missing field {k:?}")))
                    };
                    let key = (field("kind")?, field("site")?);
                    let entry = Entry {
                        content: field("content")?,
                        value: record
                            .get("value")
                            .cloned()
                            .ok_or_else(|| bad("missing field \"value\""))?,
                    };
                    if inner.map.insert(key, entry).is_some() {
                        evicted += 1;
                    }
                }
                if evicted > 0 {
                    weseer_obs::add("store.evicted", evicted);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        Ok(Store {
            path,
            inner: Mutex::new(inner),
        })
    }

    /// The backing file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Look up `(kind, site)` against the expected `content` key.
    pub fn get(&self, kind: &str, site: &str, content: &str) -> Lookup {
        let inner = self.inner.lock().unwrap();
        let (outcome, result) = match inner.map.get(&(kind.to_string(), site.to_string())) {
            Some(e) if e.content == content => ("hit", Lookup::Hit(e.value.clone())),
            Some(_) => ("stale", Lookup::Stale),
            None => ("miss", Lookup::Miss),
        };
        drop(inner);
        weseer_obs::add(&format!("store.{outcome}"), 1);
        weseer_obs::add(&format!("store.{outcome}.{kind}"), 1);
        if weseer_obs::timeline::enabled() {
            weseer_obs::timeline::instant(
                &format!("store.{outcome}"),
                "store",
                &[("kind", kind.to_string())],
            );
        }
        result
    }

    /// Record (or replace) the value at `(kind, site)` under `content`.
    /// A put identical to the stored entry is a no-op, so repeat runs do
    /// not grow the file.
    pub fn put(&self, kind: &str, site: &str, content: &str, value: Json) {
        let key = (kind.to_string(), site.to_string());
        let mut inner = self.inner.lock().unwrap();
        if let Some(e) = inner.map.get(&key) {
            if e.content == content && e.value == value {
                return;
            }
        }
        inner.map.insert(
            key.clone(),
            Entry {
                content: content.to_string(),
                value,
            },
        );
        inner.dirty.insert(key);
    }

    /// Every entry of `kind`, as `(site, content, value)` in site order.
    pub fn entries_of(&self, kind: &str) -> Vec<(String, String, Json)> {
        let inner = self.inner.lock().unwrap();
        let mut out: Vec<(String, String, Json)> = inner
            .map
            .iter()
            .filter(|((k, _), _)| k == kind)
            .map(|((_, site), e)| (site.clone(), e.content.clone(), e.value.clone()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append the session's new/changed records to the backing file (in
    /// sorted key order — the file is deterministic given the same work).
    pub fn flush(&self) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap();
        let fresh = !self.path.exists();
        if inner.dirty.is_empty() && !fresh {
            return Ok(());
        }
        let mut out = String::new();
        if fresh {
            out.push_str(HEADER);
            out.push('\n');
        }
        for key in &inner.dirty {
            let e = &inner.map[key];
            let record = Json::Obj(vec![
                ("kind".into(), Json::str(key.0.clone())),
                ("site".into(), Json::str(key.1.clone())),
                ("content".into(), Json::str(e.content.clone())),
                ("value".into(), e.value.clone()),
            ]);
            record.write(&mut out);
            out.push('\n');
        }
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        file.write_all(out.as_bytes())?;
        inner.dirty.clear();
        Ok(())
    }
}

/// Two-lane FNV-1a site hash of an arbitrarily long key (32 hex chars) —
/// keeps record lines short when the natural site id is a whole canonical
/// formula.
pub fn site_hash(key: &str) -> String {
    let lane = |basis: u64| {
        let mut h = basis;
        for &b in key.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    };
    format!(
        "{:016x}{:016x}",
        lane(0xcbf2_9ce4_8422_2325),
        lane(0x6c62_272e_07bb_0142)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "weseer-store-test-{}-{name}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn put_get_persist_reload() {
        let path = tmp("basic");
        let s = Store::open(&path).unwrap();
        assert_eq!(s.get("smt", "site1", "cfgA"), Lookup::Miss);
        s.put("smt", "site1", "cfgA", Json::str("unsat"));
        assert_eq!(
            s.get("smt", "site1", "cfgA"),
            Lookup::Hit(Json::str("unsat"))
        );
        assert_eq!(s.get("smt", "site1", "cfgB"), Lookup::Stale);
        s.flush().unwrap();

        let s2 = Store::open(&path).unwrap();
        assert_eq!(s2.len(), 1);
        assert_eq!(
            s2.get("smt", "site1", "cfgA"),
            Lookup::Hit(Json::str("unsat"))
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unchanged_flush_leaves_the_file_alone() {
        let path = tmp("stable");
        let s = Store::open(&path).unwrap();
        s.put("pair3", "fp1|fp2", "v1", Json::u64(7));
        s.flush().unwrap();
        let before = std::fs::read(&path).unwrap();

        let s2 = Store::open(&path).unwrap();
        // Identical re-put is a no-op; flush appends nothing.
        s2.put("pair3", "fp1|fp2", "v1", Json::u64(7));
        s2.flush().unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), before);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn superseded_lines_evict_on_load() {
        let path = tmp("evict");
        let s = Store::open(&path).unwrap();
        s.put("wit", "a", "c1", Json::u64(1));
        s.flush().unwrap();
        let s2 = Store::open(&path).unwrap();
        s2.put("wit", "a", "c2", Json::u64(2));
        s2.flush().unwrap();

        // The file now holds both lines; the later one wins.
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 3, "header + two appends");
        let s3 = Store::open(&path).unwrap();
        assert_eq!(s3.len(), 1);
        assert_eq!(s3.get("wit", "a", "c2"), Lookup::Hit(Json::u64(2)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_foreign_files() {
        let path = tmp("foreign");
        std::fs::write(&path, "not a store\n").unwrap();
        assert!(Store::open(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn entries_of_filters_and_sorts() {
        let path = tmp("entries");
        let s = Store::open(&path).unwrap();
        s.put("smt", "zz", "c", Json::u64(1));
        s.put("smt", "aa", "c", Json::u64(2));
        s.put("pair3", "aa", "c", Json::u64(3));
        let smt = s.entries_of("smt");
        assert_eq!(smt.len(), 2);
        assert_eq!(smt[0].0, "aa");
        assert_eq!(smt[1].0, "zz");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn site_hash_is_stable_and_wide() {
        let h = site_hash("(& v0:Int v1:Int)");
        assert_eq!(h.len(), 32);
        assert_eq!(h, site_hash("(& v0:Int v1:Int)"));
        assert_ne!(h, site_hash("(| v0:Int v1:Int)"));
    }
}

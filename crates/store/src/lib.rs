//! # weseer-store
//!
//! The persistence layer behind WeSEER's incremental warm starts: a
//! single-file, append-only JSON-lines store with an in-memory index,
//! std-only like the rest of the workspace.
//!
//! ## Data model
//!
//! Every record is **content-addressed** along two axes:
//!
//! * a **site** — *where* the result belongs (a canonical-formula hash, a
//!   `fingerprint:txn` prefix id, a pair of trace fingerprints…);
//! * a **content key** — *what* the inputs were when the result was
//!   computed (solver/tier configuration, lock-model version, the
//!   fingerprints themselves).
//!
//! [`Store::get`] classifies a lookup as [`Lookup::Hit`] (site known,
//! content matches — reuse the value), [`Lookup::Stale`] (site known but
//! the inputs changed — recompute and [`Store::put`] the replacement), or
//! [`Lookup::Miss`] (never seen). Each outcome bumps `store.{hit,stale,
//! miss}` plus a per-kind variant (`store.hit.pair3`, …) so tests can
//! assert *exactly which* entries a dirtied trace invalidates.
//!
//! ## File format
//!
//! Line 1 is the header `{"weseer_store":1}`; every other line is one
//! record `{"kind":…,"site":…,"content":…,"value":…}`. The file is only
//! ever appended to — a re-recorded site supersedes its earlier lines on
//! load (counted in `store.evicted`) — and [`Store::flush`] appends the
//! session's new or changed records in sorted order, so an unchanged warm
//! run leaves the file untouched.
//!
//! ## Concurrency
//!
//! The in-memory index sits behind an `RwLock`: lookups (the hot path for
//! warm analysis shards) take a shared read lock, puts a brief write
//! lock. [`Store::open_live`] additionally turns every put into an
//! immediate append to the backing file — one `write` per record, never a
//! whole-file rewrite — so a long-lived daemon persists verdicts as they
//! land and concurrent sessions against the same path see each other's
//! work on their next open. A record cut short by a crash mid-append is
//! recovered on the next open: a malformed **final** line is skipped
//! (counted in `store.recovered_truncation`), while corruption anywhere
//! else still fails the open.

pub mod codec;
pub mod json;

use crate::json::Json;
use std::collections::{BTreeSet, HashMap};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, RwLock};

/// Store header line (schema version 1).
const HEADER: &str = "{\"weseer_store\":1}";

/// The outcome of a [`Store::get`].
#[derive(Debug, Clone, PartialEq)]
pub enum Lookup {
    /// Site known and the content key matches: the stored value applies.
    Hit(Json),
    /// Site known but recorded under a different content key: the inputs
    /// changed, recompute.
    Stale,
    /// Site never recorded.
    Miss,
}

#[derive(Debug)]
struct Entry {
    content: String,
    value: Json,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<(String, String), Entry>,
    /// Keys added or changed since open, flushed in sorted order.
    dirty: BTreeSet<(String, String)>,
}

/// A single-file persistent store (thread-safe; share behind an `Arc`).
#[derive(Debug)]
pub struct Store {
    path: PathBuf,
    inner: RwLock<Inner>,
    /// `Some(file)` in live-append mode ([`Store::open_live`]): every put
    /// is written through immediately instead of waiting for a flush.
    live: Mutex<Option<std::fs::File>>,
    /// Truncated trailing records skipped during open.
    recovered: u64,
}

impl Store {
    /// Open (or create on first [`Store::flush`]) the store at `path`.
    ///
    /// Superseded lines — an old value for a site that a later line
    /// re-records — are counted in `store.evicted`. A malformed **final**
    /// line (a record cut short when the writing process died) is skipped
    /// and counted in `store.recovered_truncation`; corruption anywhere
    /// earlier in the file is still an error.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Store> {
        let path = path.as_ref().to_path_buf();
        let mut inner = Inner::default();
        let mut recovered = 0u64;
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                let mut lines: Vec<&str> = text.lines().collect();
                match lines.first() {
                    None => {}
                    Some(&HEADER) => {
                        lines.remove(0);
                    }
                    Some(other) => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("{}: not a weseer store (header {other:?})", path.display()),
                        ));
                    }
                }
                let last = lines.len().saturating_sub(1);
                let mut evicted = 0u64;
                for (n, line) in lines.iter().enumerate() {
                    let bad = |why: &str| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("{}:{}: {why}", path.display(), n + 2),
                        )
                    };
                    let parse = || -> io::Result<((String, String), Entry)> {
                        let record = Json::parse(line).map_err(|e| bad(&e))?;
                        let field = |k: &str| {
                            record
                                .get(k)
                                .and_then(Json::as_str)
                                .map(str::to_string)
                                .ok_or_else(|| bad(&format!("missing field {k:?}")))
                        };
                        let key = (field("kind")?, field("site")?);
                        let entry = Entry {
                            content: field("content")?,
                            value: record
                                .get("value")
                                .cloned()
                                .ok_or_else(|| bad("missing field \"value\""))?,
                        };
                        Ok((key, entry))
                    };
                    match parse() {
                        Ok((key, entry)) => {
                            if inner.map.insert(key, entry).is_some() {
                                evicted += 1;
                            }
                        }
                        // Only the trailing record can be a benign
                        // truncation — a daemon killed mid-append.
                        Err(_) if n == last => recovered += 1,
                        Err(e) => return Err(e),
                    }
                }
                if evicted > 0 {
                    weseer_obs::add("store.evicted", evicted);
                }
                if recovered > 0 {
                    weseer_obs::add("store.recovered_truncation", recovered);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        Ok(Store {
            path,
            inner: RwLock::new(inner),
            live: Mutex::new(None),
            recovered,
        })
    }

    /// Open the store in **live-append** mode: every [`Store::put`] is
    /// written through to the backing file immediately (one appended line
    /// per new record), so a long-lived daemon never needs an explicit
    /// flush and a crash loses at most the record being written — which
    /// the next [`Store::open`] recovers from.
    pub fn open_live(path: impl AsRef<Path>) -> io::Result<Store> {
        let store = Self::open(&path)?;
        let fresh = !store.path.exists();
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&store.path)?;
        if fresh {
            file.write_all(HEADER.as_bytes())?;
            file.write_all(b"\n")?;
        } else {
            // Before appending, make the physical tail clean: drop a
            // recovered partial record (otherwise the next append would
            // splice onto it, turning a benign truncation into mid-file
            // corruption) and newline-terminate a complete final record
            // that lost its newline.
            let text = std::fs::read_to_string(&store.path)?;
            if store.recovered > 0 {
                let trimmed = text.strip_suffix('\n').unwrap_or(&text);
                let keep = trimmed.rfind('\n').map(|i| i + 1).unwrap_or(0);
                file.set_len(keep as u64)?;
            } else if !text.is_empty() && !text.ends_with('\n') {
                file.write_all(b"\n")?;
            }
        }
        *store.live.lock().unwrap() = Some(file);
        Ok(store)
    }

    /// How many truncated trailing records [`Store::open`] skipped.
    pub fn recovered_truncations(&self) -> u64 {
        self.recovered
    }

    /// The backing file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Look up `(kind, site)` against the expected `content` key.
    pub fn get(&self, kind: &str, site: &str, content: &str) -> Lookup {
        let inner = self.inner.read().unwrap();
        let (outcome, result) = match inner.map.get(&(kind.to_string(), site.to_string())) {
            Some(e) if e.content == content => ("hit", Lookup::Hit(e.value.clone())),
            Some(_) => ("stale", Lookup::Stale),
            None => ("miss", Lookup::Miss),
        };
        drop(inner);
        weseer_obs::add(&format!("store.{outcome}"), 1);
        weseer_obs::add(&format!("store.{outcome}.{kind}"), 1);
        if weseer_obs::timeline::enabled() {
            weseer_obs::timeline::instant(
                &format!("store.{outcome}"),
                "store",
                &[("kind", kind.to_string())],
            );
        }
        result
    }

    /// Record (or replace) the value at `(kind, site)` under `content`.
    /// A put identical to the stored entry is a no-op, so repeat runs do
    /// not grow the file. In live-append mode the record is written
    /// through to the backing file immediately (a single appended line).
    pub fn put(&self, kind: &str, site: &str, content: &str, value: Json) {
        let key = (kind.to_string(), site.to_string());
        let mut inner = self.inner.write().unwrap();
        if let Some(e) = inner.map.get(&key) {
            if e.content == content && e.value == value {
                return;
            }
        }
        inner.map.insert(
            key.clone(),
            Entry {
                content: content.to_string(),
                value: value.clone(),
            },
        );
        let mut live = self.live.lock().unwrap();
        if let Some(file) = live.as_mut() {
            // Write through: one line per record, appended atomically with
            // respect to other puts (we hold the file mutex). The index
            // write lock is still held, so a concurrent open of the same
            // path can at worst see this line cut short — which it
            // recovers from.
            let line = record_line(&key.0, &key.1, content, &value);
            let _ = file.write_all(line.as_bytes());
        } else {
            inner.dirty.insert(key);
        }
    }

    /// Every entry of `kind`, as `(site, content, value)` in site order.
    pub fn entries_of(&self, kind: &str) -> Vec<(String, String, Json)> {
        let inner = self.inner.read().unwrap();
        let mut out: Vec<(String, String, Json)> = inner
            .map
            .iter()
            .filter(|((k, _), _)| k == kind)
            .map(|((_, site), e)| (site.clone(), e.content.clone(), e.value.clone()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.inner.read().unwrap().map.len()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append the session's new/changed records to the backing file (in
    /// sorted key order — the file is deterministic given the same work).
    pub fn flush(&self) -> io::Result<()> {
        let mut inner = self.inner.write().unwrap();
        let fresh = !self.path.exists();
        if inner.dirty.is_empty() && !fresh {
            return Ok(());
        }
        let mut out = String::new();
        if fresh {
            out.push_str(HEADER);
            out.push('\n');
        }
        for key in &inner.dirty {
            let e = &inner.map[key];
            out.push_str(&record_line(&key.0, &key.1, &e.content, &e.value));
        }
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        file.write_all(out.as_bytes())?;
        inner.dirty.clear();
        Ok(())
    }
}

/// One serialized store record, newline-terminated — shared by the batch
/// flush and the live write-through path so both produce identical lines.
fn record_line(kind: &str, site: &str, content: &str, value: &Json) -> String {
    let record = Json::Obj(vec![
        ("kind".into(), Json::str(kind.to_string())),
        ("site".into(), Json::str(site.to_string())),
        ("content".into(), Json::str(content.to_string())),
        ("value".into(), value.clone()),
    ]);
    let mut out = String::new();
    record.write(&mut out);
    out.push('\n');
    out
}

/// Two-lane FNV-1a site hash of an arbitrarily long key (32 hex chars) —
/// keeps record lines short when the natural site id is a whole canonical
/// formula.
pub fn site_hash(key: &str) -> String {
    let lane = |basis: u64| {
        let mut h = basis;
        for &b in key.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    };
    format!(
        "{:016x}{:016x}",
        lane(0xcbf2_9ce4_8422_2325),
        lane(0x6c62_272e_07bb_0142)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "weseer-store-test-{}-{name}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn put_get_persist_reload() {
        let path = tmp("basic");
        let s = Store::open(&path).unwrap();
        assert_eq!(s.get("smt", "site1", "cfgA"), Lookup::Miss);
        s.put("smt", "site1", "cfgA", Json::str("unsat"));
        assert_eq!(
            s.get("smt", "site1", "cfgA"),
            Lookup::Hit(Json::str("unsat"))
        );
        assert_eq!(s.get("smt", "site1", "cfgB"), Lookup::Stale);
        s.flush().unwrap();

        let s2 = Store::open(&path).unwrap();
        assert_eq!(s2.len(), 1);
        assert_eq!(
            s2.get("smt", "site1", "cfgA"),
            Lookup::Hit(Json::str("unsat"))
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unchanged_flush_leaves_the_file_alone() {
        let path = tmp("stable");
        let s = Store::open(&path).unwrap();
        s.put("pair3", "fp1|fp2", "v1", Json::u64(7));
        s.flush().unwrap();
        let before = std::fs::read(&path).unwrap();

        let s2 = Store::open(&path).unwrap();
        // Identical re-put is a no-op; flush appends nothing.
        s2.put("pair3", "fp1|fp2", "v1", Json::u64(7));
        s2.flush().unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), before);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn superseded_lines_evict_on_load() {
        let path = tmp("evict");
        let s = Store::open(&path).unwrap();
        s.put("wit", "a", "c1", Json::u64(1));
        s.flush().unwrap();
        let s2 = Store::open(&path).unwrap();
        s2.put("wit", "a", "c2", Json::u64(2));
        s2.flush().unwrap();

        // The file now holds both lines; the later one wins.
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 3, "header + two appends");
        let s3 = Store::open(&path).unwrap();
        assert_eq!(s3.len(), 1);
        assert_eq!(s3.get("wit", "a", "c2"), Lookup::Hit(Json::u64(2)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_foreign_files() {
        let path = tmp("foreign");
        std::fs::write(&path, "not a store\n").unwrap();
        assert!(Store::open(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn entries_of_filters_and_sorts() {
        let path = tmp("entries");
        let s = Store::open(&path).unwrap();
        s.put("smt", "zz", "c", Json::u64(1));
        s.put("smt", "aa", "c", Json::u64(2));
        s.put("pair3", "aa", "c", Json::u64(3));
        let smt = s.entries_of("smt");
        assert_eq!(smt.len(), 2);
        assert_eq!(smt[0].0, "aa");
        assert_eq!(smt[1].0, "zz");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_trailing_record_is_recovered() {
        let path = tmp("truncate");
        let s = Store::open(&path).unwrap();
        s.put("smt", "a", "c", Json::str("unsat"));
        s.put("smt", "b", "c", Json::str("sat"));
        s.flush().unwrap();

        // Simulate a daemon killed mid-append: cut the final record short.
        let text = std::fs::read_to_string(&path).unwrap();
        let cut = text.len() - 10;
        std::fs::write(&path, &text[..cut]).unwrap();

        let s2 = Store::open(&path).unwrap();
        assert_eq!(s2.recovered_truncations(), 1);
        assert_eq!(s2.len(), 1, "the intact record survives");
        assert_eq!(s2.get("smt", "a", "c"), Lookup::Hit(Json::str("unsat")));
        assert_eq!(s2.get("smt", "b", "c"), Lookup::Miss);

        // Re-recording through a live handle must not splice onto the
        // partial line: the next open sees a clean file.
        let s3 = Store::open_live(&path).unwrap();
        s3.put("smt", "b", "c", Json::str("sat"));
        drop(s3);
        let s4 = Store::open(&path).unwrap();
        assert_eq!(s4.recovered_truncations(), 0);
        assert_eq!(s4.len(), 2);
        assert_eq!(s4.get("smt", "b", "c"), Lookup::Hit(Json::str("sat")));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mid_file_corruption_is_still_an_error() {
        let path = tmp("midfile");
        let s = Store::open(&path).unwrap();
        s.put("smt", "a", "c", Json::u64(1));
        s.flush().unwrap();
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("garbage not json\n");
        text.push_str(&super::record_line("smt", "b", "c", &Json::u64(2)));
        std::fs::write(&path, text).unwrap();
        assert!(
            Store::open(&path).is_err(),
            "corruption before the final line must fail the open"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn live_mode_appends_on_put_without_flush() {
        let path = tmp("live");
        let s = Store::open_live(&path).unwrap();
        s.put("wit", "x", "c1", Json::u64(1));
        s.put("wit", "y", "c1", Json::u64(2));
        // Identical re-put must not grow the file.
        s.put("wit", "x", "c1", Json::u64(1));
        drop(s); // no flush

        let s2 = Store::open(&path).unwrap();
        assert_eq!(s2.len(), 2);
        assert_eq!(s2.get("wit", "x", "c1"), Lookup::Hit(Json::u64(1)));
        assert_eq!(s2.get("wit", "y", "c1"), Lookup::Hit(Json::u64(2)));
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 3, "header + one line per record");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn site_hash_is_stable_and_wide() {
        let h = site_hash("(& v0:Int v1:Int)");
        assert_eq!(h.len(), 32);
        assert_eq!(h, site_hash("(& v0:Int v1:Int)"));
        assert_ne!(h, site_hash("(| v0:Int v1:Int)"));
    }
}

//! Concurrent store access: the daemon shares one `Store` handle across
//! analysis shards, so N threads hammer overlapping sites through
//! `get`/`put` at once. Whatever the interleaving, the in-memory index
//! must converge to the same entries and a batch flush must produce a
//! byte-identical file (the flush order is the sorted key order, not the
//! arrival order).

use std::sync::Arc;
use weseer_store::{json::Json, Lookup, Store};

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "weseer-store-concurrent-{}-{name}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&p);
    p
}

/// Deterministic value for a site, independent of which thread wins the
/// race to record it.
fn value_for(site: usize) -> Json {
    Json::u64((site as u64) * 31 + 7)
}

fn hammer(store: &Arc<Store>, threads: usize, sites: usize) {
    std::thread::scope(|scope| {
        for t in 0..threads {
            let store = Arc::clone(store);
            scope.spawn(move || {
                // Every thread walks every site from a different start
                // offset, so puts and gets overlap heavily.
                for step in 0..sites {
                    let site = (t * 17 + step) % sites;
                    let name = format!("site{site:03}");
                    match store.get("smt", &name, "cfg") {
                        Lookup::Hit(v) => assert_eq!(v, value_for(site)),
                        Lookup::Stale => panic!("content key never changes"),
                        Lookup::Miss => store.put("smt", &name, "cfg", value_for(site)),
                    }
                }
            });
        }
    });
}

#[test]
fn hammered_store_flushes_byte_identical() {
    const THREADS: usize = 8;
    const SITES: usize = 200;

    let mut reference: Option<Vec<u8>> = None;
    for round in 0..3 {
        let path = tmp(&format!("round{round}"));
        let store = Arc::new(Store::open(&path).unwrap());
        hammer(&store, THREADS, SITES);
        assert_eq!(store.len(), SITES);
        store.flush().unwrap();
        let bytes = std::fs::read(&path).unwrap();
        match &reference {
            None => reference = Some(bytes),
            Some(first) => assert_eq!(
                &bytes, first,
                "flush must be byte-identical regardless of interleaving"
            ),
        }
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn hammered_live_store_converges_on_reload() {
    const THREADS: usize = 8;
    const SITES: usize = 120;

    let path = tmp("live");
    {
        let store = Arc::new(Store::open_live(&path).unwrap());
        hammer(&store, THREADS, SITES);
        assert_eq!(store.len(), SITES);
        // No flush: live mode already wrote every record through.
    }
    let reloaded = Store::open(&path).unwrap();
    assert_eq!(reloaded.len(), SITES);
    for site in 0..SITES {
        let name = format!("site{site:03}");
        assert_eq!(
            reloaded.get("smt", &name, "cfg"),
            Lookup::Hit(value_for(site))
        );
    }
    let _ = std::fs::remove_file(&path);
}

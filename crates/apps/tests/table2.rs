//! The Table II reproduction: run WeSEER end-to-end on both simulated
//! applications' unit-test traces and check that every Table II deadlock
//! row is found (and nothing unexpected appears).

use std::collections::BTreeMap;
use weseer_analyzer::{diagnose, AnalyzerConfig, CollectedTrace, Diagnosis};
use weseer_apps::app::collect_trace;
use weseer_apps::{classify, AppLocks, Broadleaf, ECommerceApp, Fixes, KnownDeadlock, Shopizer};
use weseer_concolic::{ExecMode, LibraryMode};
use weseer_db::Database;

fn analyze(app: &dyn ECommerceApp) -> (Diagnosis, BTreeMap<KnownDeadlock, usize>) {
    let db = Database::new(app.catalog());
    app.seed(&db);
    let fixes = Fixes::none();
    let locks = AppLocks::new();
    let mut traces = Vec::new();
    for test in app.unit_tests() {
        let (trace, ctx, result) = collect_trace(
            app,
            test,
            &db,
            &fixes,
            &locks,
            ExecMode::Concolic,
            LibraryMode::Modeled,
        );
        result.unwrap_or_else(|e| panic!("unit test {test} failed: {e}"));
        traces.push(CollectedTrace::new(trace, ctx));
    }
    let diagnosis = diagnose(&app.catalog(), &traces, &AnalyzerConfig::default());
    let mut groups: BTreeMap<KnownDeadlock, usize> = BTreeMap::new();
    for r in &diagnosis.deadlocks {
        *groups.entry(classify(app.name(), r)).or_insert(0) += 1;
    }
    (diagnosis, groups)
}

#[test]
fn broadleaf_table2_rows_found() {
    let (diagnosis, groups) = analyze(&Broadleaf);
    eprintln!("broadleaf groups: {groups:?}");
    eprintln!("stats: {:?}", diagnosis.stats);
    for r in &diagnosis.deadlocks {
        if classify("broadleaf", r) == KnownDeadlock::Unexpected {
            eprintln!("UNEXPECTED:\n{r}");
        }
    }
    let expected = [
        KnownDeadlock::D1,
        KnownDeadlock::D2,
        KnownDeadlock::D3_4,
        KnownDeadlock::D5_6,
        KnownDeadlock::D7_8,
        KnownDeadlock::D9,
        KnownDeadlock::D10,
        KnownDeadlock::D11,
        KnownDeadlock::D12_13,
    ];
    for row in expected {
        assert!(
            groups.contains_key(&row),
            "Table II row {row} ({}) not found; groups: {groups:?}",
            row.description()
        );
    }
    assert!(
        !groups.contains_key(&KnownDeadlock::Unexpected),
        "unexpected cycles: {groups:?}"
    );
}

#[test]
fn shopizer_table2_rows_found() {
    let (diagnosis, groups) = analyze(&Shopizer);
    eprintln!("shopizer groups: {groups:?}");
    eprintln!("stats: {:?}", diagnosis.stats);
    let expected = [
        KnownDeadlock::D14,
        KnownDeadlock::D15,
        KnownDeadlock::D16,
        KnownDeadlock::D17,
        KnownDeadlock::D18,
    ];
    for row in expected {
        assert!(
            groups.contains_key(&row),
            "Table II row {row} ({}) not found; groups: {groups:?}",
            row.description()
        );
    }
    assert!(
        !groups.contains_key(&KnownDeadlock::Unexpected),
        "unexpected cycles: {groups:?}"
    );
}

//! Developer-facing report rendering: the code-location report with the
//! replay verdict (and witness schedule, when confirmed) attached.

use std::fmt::Write as _;
use weseer_analyzer::DeadlockReport;
use weseer_replay::ReplayVerdict;

/// Render one diagnosed deadlock as the full developer report: Table II
/// classification, the analyzer's code-location report (statements,
/// triggering stack frames, witness assignment), and the replay verdict —
/// a concrete witness schedule when the deadlock was replay-confirmed.
pub fn witnessed_report(app: &str, report: &DeadlockReport, verdict: &ReplayVerdict) -> String {
    let mut out = String::new();
    let row = crate::classify(app, report);
    let _ = writeln!(out, "[{row:?}] {report}");
    match verdict {
        ReplayVerdict::Confirmed(w) => {
            let _ = writeln!(out, "replay: CONFIRMED");
            out.push_str(&w.render());
        }
        ReplayVerdict::NotReproduced {
            schedules_explored,
            schedules_pruned,
        } => {
            let _ = writeln!(
                out,
                "replay: not reproduced ({schedules_explored} schedules explored, {schedules_pruned} pruned)"
            );
        }
        ReplayVerdict::Skipped(reason) => {
            let _ = writeln!(out, "replay: skipped ({reason})");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use weseer_analyzer::CycleId;
    use weseer_replay::{Witness, WitnessInstance, WitnessStep};

    fn sample_report() -> DeadlockReport {
        DeadlockReport {
            cycle: CycleId {
                a_api: "Add2".into(),
                b_api: "Ship".into(),
                a_txn: 0,
                b_txn: 0,
                a_hold: 1,
                a_wait: 2,
                b_hold: 1,
                b_wait: 2,
            },
            statements: vec![],
            model: vec![],
            sat_model: weseer_smt::Model::default(),
        }
    }

    #[test]
    fn confirmed_report_includes_witness_schedule() {
        let verdict = ReplayVerdict::Confirmed(Box::new(Witness {
            instances: vec![WitnessInstance {
                name: "A1".into(),
                api: "Add2".into(),
            }],
            steps: vec![WitnessStep {
                instance: "A1".into(),
                label: "Q4".into(),
                sql: "UPDATE T SET V = 1 WHERE ID = 1".into(),
                locks: vec![],
                outcome: "deadlock".into(),
                waits_on: vec!["A1".into()],
            }],
            cycle: vec!["A1".into()],
            schedules_explored: 1,
            schedules_pruned: 0,
        }));
        let s = witnessed_report("shopizer", &sample_report(), &verdict);
        assert!(s.contains("replay: CONFIRMED"));
        assert!(s.contains("witness schedule"));
        assert!(s.contains("UPDATE T SET V = 1"));
    }

    #[test]
    fn not_reproduced_report_shows_exploration_counts() {
        let verdict = ReplayVerdict::NotReproduced {
            schedules_explored: 9,
            schedules_pruned: 4,
        };
        let s = witnessed_report("shopizer", &sample_report(), &verdict);
        assert!(s.contains("not reproduced (9 schedules explored, 4 pruned)"));
    }
}

//! Per-API execution context shared by the simulated applications.

use crate::fixtures::Fixes;
use crate::locks::AppLocks;
use weseer_concolic::{EngineRef, SymValue};
use weseer_db::Database;
use weseer_orm::OrmSession;
use weseer_sqlir::{parser, Statement, Value};

/// Everything one API invocation needs: the concolic engine, an ORM
/// session over a fresh database connection, the fix configuration, and
/// the application-level lock registry.
pub struct AppCtx<'a> {
    /// Concolic engine handle (shared with session and driver).
    pub engine: EngineRef,
    /// ORM session for this request (session-per-request, like the apps).
    pub session: OrmSession<weseer_db::Session>,
    /// The database (identifier generation).
    pub db: &'a Database,
    /// Enabled fixes.
    pub fixes: &'a Fixes,
    /// Application-level locks.
    pub locks: &'a AppLocks,
}

impl<'a> AppCtx<'a> {
    /// Open a context with a fresh session.
    pub fn new(db: &'a Database, engine: EngineRef, fixes: &'a Fixes, locks: &'a AppLocks) -> Self {
        let session = OrmSession::new(engine.clone(), db.session(), db.catalog().clone());
        AppCtx {
            engine,
            session,
            db,
            fixes,
            locks,
        }
    }

    /// Draw a fresh identifier from `table`'s sequence, tagged as unique
    /// for the analyzer.
    pub fn gen_id(&mut self, table: &str) -> SymValue {
        let v = self.db.next_id(table);
        self.engine
            .borrow_mut()
            .make_unique_id(table, Value::Int(v))
    }
}

/// Parse a statement in the supported SQL subset.
///
/// # Panics
/// Panics on syntax errors — application SQL is compiled in.
pub fn sql(text: &str) -> Statement {
    parser::parse(text).unwrap_or_else(|e| panic!("bad app SQL {text:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_parses_subset() {
        let s = sql("SELECT * FROM Cart c WHERE c.C_ID = ?");
        assert_eq!(s.tables(), vec!["Cart"]);
    }

    #[test]
    #[should_panic(expected = "bad app SQL")]
    fn sql_panics_on_garbage() {
        let _ = sql("SELEKT");
    }
}

//! Simulated **Shopizer** e-commerce application (paper Sec. VII-B:
//! Shopizer 2.12.0, 92K LoC, deadlocks d14–d18).
//!
//! All Shopizer deadlocks live on the `Product` table (paper Sec. VII-C2):
//!
//! | id | shape | fix |
//! |----|-------|-----|
//! | d14 | Ship–Ship read-modify-write while pricing | f9 app-level lock |
//! | d15 | pricing vs. commit read-modify-write | f9 |
//! | d16 | Checkout–Checkout commit read-modify-write | f9 |
//! | d17 | multi-product updates in inconsistent order | f10 sorted updates |
//! | d18 | commit updates vs. per-product reads in another order | f11 sorted reads |
//!
//! Product loading uses per-row point SELECTs (the ORM's lazy N+1
//! pattern), so access *order* is visible in the trace — which is what
//! makes d17/d18 orderings analyzable, and what lets the fine-grained
//! phase prove the sorted (fixed) variants deadlock-free via the recorded
//! comparison path conditions.

use crate::ctx::{sql, AppCtx};
use crate::fixtures::Fix;
use crate::locks::AppLockGuard;
use weseer_concolic::{loc, CodeLoc, EngineRef, SymValue};
use weseer_orm::{EntityRef, OrmError};
use weseer_sqlir::{Catalog, CmpOp, ColType, TableBuilder, Value};

/// The simulated Shopizer application.
#[derive(Debug, Default, Clone, Copy)]
pub struct Shopizer;

impl Shopizer {
    /// The database schema.
    pub fn catalog() -> Catalog {
        Catalog::new(vec![
            TableBuilder::new("Customer")
                .col("ID", ColType::Int)
                .col("USERNAME", ColType::Str)
                .col("EMAIL", ColType::Str)
                .col("PASSWORD", ColType::Str)
                .primary_key(&["ID"])
                .unique_index("uq_customer_username", &["USERNAME"])
                .build()
                .unwrap(),
            TableBuilder::new("Cart")
                .col("ID", ColType::Int)
                .col("C_ID", ColType::Int)
                .col("STATUS", ColType::Str)
                .primary_key(&["ID"])
                .unique_index("uq_cart_c_id", &["C_ID"])
                .build()
                .unwrap(),
            TableBuilder::new("CartItem")
                .col("ID", ColType::Int)
                .col("CART_ID", ColType::Int)
                .col("P_ID", ColType::Int)
                .col("QTY", ColType::Int)
                .primary_key(&["ID"])
                .unique_index("uq_cartitem_cart_product", &["CART_ID", "P_ID"])
                .foreign_key("P_ID", "Product", "ID")
                .build()
                .unwrap(),
            TableBuilder::new("Address")
                .col("ID", ColType::Int)
                .col("C_ID", ColType::Int)
                .col("CITY", ColType::Str)
                .primary_key(&["ID"])
                .unique_index("uq_address_c_id", &["C_ID"])
                .build()
                .unwrap(),
            TableBuilder::new("Product")
                .col("ID", ColType::Int)
                .col("NAME", ColType::Str)
                .col("QTY", ColType::Int)
                .col("PRICE", ColType::Float)
                .col("PRICED", ColType::Int)
                .primary_key(&["ID"])
                .build()
                .unwrap(),
            TableBuilder::new("Orders")
                .col("ID", ColType::Int)
                .col("C_ID", ColType::Int)
                .col("TOTAL", ColType::Float)
                .primary_key(&["ID"])
                .foreign_key("C_ID", "Customer", "ID")
                .build()
                .unwrap(),
            TableBuilder::new("OrderItem")
                .col("ID", ColType::Int)
                .col("O_ID", ColType::Int)
                .col("P_ID", ColType::Int)
                .col("QTY", ColType::Int)
                .primary_key(&["ID"])
                .foreign_key("O_ID", "Orders", "ID")
                .build()
                .unwrap(),
        ])
        .unwrap()
    }

    /// Seed products.
    pub fn seed(db: &weseer_db::Database) {
        let products = (1..=10)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::str(format!("sku-{i}")),
                    Value::Int(100_000),
                    Value::Float(19.0),
                    Value::Int(0),
                ]
            })
            .collect();
        db.seed("Product", products);
        db.bump_id("Product", 10);
    }

    // ------------------------------------------------------------------
    // Register
    // ------------------------------------------------------------------

    /// Register a customer (INSERT-only — Shopizer has no Register
    /// deadlock in Table II). A cart is created eagerly with the account.
    pub fn register(
        &self,
        ctx: &mut AppCtx<'_>,
        username: SymValue,
        email: SymValue,
        password: SymValue,
        confirm: SymValue,
    ) -> Result<SymValue, OrmError> {
        let _f = weseer_concolic::engine::frame(&ctx.engine, loc!("Register"));
        let ok = {
            let mut e = ctx.engine.borrow_mut();
            let c = weseer_concolic::builtins::string_equals(&mut e, &password, &confirm);
            e.branch(&c, loc!("Register"))
        };
        if !ok {
            return Err(OrmError::AppAbort("password confirmation mismatch".into()));
        }
        ctx.session.begin();
        let id = ctx.gen_id("Customer");
        ctx.session.persist(
            "Customer",
            vec![
                ("ID".into(), id.clone()),
                ("USERNAME".into(), username),
                ("EMAIL".into(), email),
                ("PASSWORD".into(), password),
            ],
            loc!("Register::save"),
        );
        let cart_id = ctx.gen_id("Cart");
        ctx.session.persist(
            "Cart",
            vec![
                ("ID".into(), cart_id),
                ("C_ID".into(), id.clone()),
                ("STATUS".into(), SymValue::concrete("ACTIVE")),
            ],
            loc!("Register::createCart"),
        );
        ctx.session.commit(loc!("Register"))?;
        Ok(id)
    }

    // ------------------------------------------------------------------
    // Add
    // ------------------------------------------------------------------

    /// Add a product to the cart. Product reads happen per row (N+1
    /// lazy loading) — participating in d18 as the "read" side.
    pub fn add_to_cart(
        &self,
        ctx: &mut AppCtx<'_>,
        user_id: SymValue,
        product_id: SymValue,
        qty: SymValue,
    ) -> Result<(), OrmError> {
        let _f = weseer_concolic::engine::frame(&ctx.engine, loc!("Add"));
        // Add reads shared product rows while holding cart-item locks, so
        // f9's per-product serialization covers it alongside Ship and
        // Checkout.
        let _serial = self.f9_product_locks(ctx, &user_id, product_id.as_int())?;
        ctx.session.begin();
        let cart = self.lookup_cart(ctx, &user_id)?;
        let cart_id = cart.get("ID");

        // Validate the product (point read).
        let product = ctx
            .session
            .find("Product", &product_id, loc!("Add::readProduct"))?
            .ok_or_else(|| OrmError::AppAbort("unknown product".into()))?;
        let _price = product.get("PRICE");

        // Put the item in the cart (UPSERT — Shopizer has no d2-style
        // check-then-insert deadlock in Table II).
        let item_id = ctx.gen_id("CartItem");
        ctx.session.upsert(
            "CartItem",
            vec![
                ("ID".into(), item_id),
                ("CART_ID".into(), cart_id.clone()),
                ("P_ID".into(), product_id.clone()),
                ("QTY".into(), qty.clone()),
            ],
            &["QTY"],
            loc!("Add::saveItem"),
        )?;

        // Recompute the cart summary: read every product of the cart,
        // one point SELECT per row (d18's read side; f11 sorts them).
        let items = self.load_items(ctx, &cart_id, loc!("Add::loadItems"))?;
        let items = self.maybe_sorted(ctx, items, ctx.fixes.on(Fix::F11), loc!("Add::sortReads"));
        for item in &items {
            let pid = item.get("P_ID");
            let p = ctx
                .session
                .find("Product", &pid, loc!("Add::readCartProducts"))?
                .ok_or_else(|| OrmError::AppAbort("dangling cart item".into()))?;
            let _subtotal = p.get("PRICE");
        }
        ctx.session.commit(loc!("Add"))?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Ship
    // ------------------------------------------------------------------

    /// Record the shipping address and price the order's products
    /// (d14's read-modify-write on shared product rows).
    pub fn ship(
        &self,
        ctx: &mut AppCtx<'_>,
        user_id: SymValue,
        city: SymValue,
    ) -> Result<(), OrmError> {
        let _f = weseer_concolic::engine::frame(&ctx.engine, loc!("Ship"));
        let _serial = self.f9_product_locks(ctx, &user_id, None)?;
        ctx.session.begin();
        let cart = self.lookup_cart(ctx, &user_id)?;
        let cart_id = cart.get("ID");

        let addr_id = ctx.gen_id("Address");
        ctx.session.upsert(
            "Address",
            vec![
                ("ID".into(), addr_id),
                ("C_ID".into(), user_id.clone()),
                ("CITY".into(), city),
            ],
            &["CITY"],
            loc!("Ship::saveAddress"),
        )?;

        self.price_products(ctx, &cart_id)?;
        ctx.session.commit(loc!("Ship"))?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Checkout
    // ------------------------------------------------------------------

    /// Checkout: price the products once more, then commit the order —
    /// decrementing product stock (d15–d18's write side).
    pub fn checkout(&self, ctx: &mut AppCtx<'_>, user_id: SymValue) -> Result<(), OrmError> {
        let _f = weseer_concolic::engine::frame(&ctx.engine, loc!("Checkout"));
        let _serial = self.f9_product_locks(ctx, &user_id, None)?;
        ctx.session.begin();
        let cart = self.lookup_cart(ctx, &user_id)?;
        let cart_id = cart.get("ID");

        // Price the order's products (same routine as Ship — d15 pairs a
        // pricing side with a commit side).
        let items = self.price_products(ctx, &cart_id)?;

        // Commit the order: stock decrement per product, in cart order
        // unless f10 sorts.
        let items = self.maybe_sorted(
            ctx,
            items,
            ctx.fixes.on(Fix::F10),
            loc!("Checkout::sortUpdates"),
        );
        let order_id = ctx.gen_id("Orders");
        let mut total = SymValue::concrete(Value::Float(0.0));
        for item in &items {
            let pid = item.get("P_ID");
            let wanted = item.get("QTY");
            let p = ctx
                .session
                .find("Product", &pid, loc!("Checkout::commitOrder"))?
                .ok_or_else(|| OrmError::AppAbort("dangling cart item".into()))?;
            let stock = p.get("QTY");
            let enough = {
                let mut e = ctx.engine.borrow_mut();
                let c = e.cmp(CmpOp::Ge, &stock, &wanted);
                e.branch(&c, loc!("Checkout::commitOrder"))
            };
            if !enough {
                ctx.session.rollback();
                return Err(OrmError::AppAbort("no enough products".into()));
            }
            let rest = ctx.engine.borrow_mut().sub(&stock, &wanted);
            p.set(&ctx.engine, "QTY", rest, loc!("Checkout::commitOrder"));
            let price = p.get("PRICE");
            total = ctx.engine.borrow_mut().add(&total, &price);
            let oi = ctx.gen_id("OrderItem");
            ctx.session.persist(
                "OrderItem",
                vec![
                    ("ID".into(), oi),
                    ("O_ID".into(), order_id.clone()),
                    ("P_ID".into(), pid),
                    ("QTY".into(), wanted),
                ],
                loc!("Checkout::createOrderItem"),
            );
        }
        ctx.session.persist(
            "Orders",
            vec![
                ("ID".into(), order_id.clone()),
                ("C_ID".into(), user_id.clone()),
                ("TOTAL".into(), total),
            ],
            loc!("Checkout::createOrder"),
        );
        ctx.session.commit(loc!("Checkout"))?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // shared pieces
    // ------------------------------------------------------------------

    /// Fix f9: acquire sorted per-product application locks *before* the
    /// transaction starts (the product set is read in a short committed
    /// pre-transaction; each client is one customer, so its own cart is
    /// stable). Holding no database locks while blocking on application
    /// locks — and acquiring them in sorted order — rules out hybrid
    /// app/database deadlocks while serializing conflicting product
    /// sections.
    fn f9_product_locks(
        &self,
        ctx: &mut AppCtx<'_>,
        user_id: &SymValue,
        extra_product: Option<i64>,
    ) -> Result<Vec<AppLockGuard>, OrmError> {
        if !ctx.fixes.on(Fix::F9) {
            return Ok(Vec::new());
        }
        ctx.session.begin();
        let mut ids: Vec<i64> = Vec::new();
        let q = sql("SELECT * FROM Cart c WHERE c.C_ID = ?");
        let carts = ctx
            .session
            .raw(&q, std::slice::from_ref(user_id), loc!("f9::readCart"))?;
        if let Some(cart) = carts.rows.first() {
            let cart_id = cart
                .get("c.ID")
                .cloned()
                .unwrap_or(SymValue::concrete(0i64));
            let q = sql("SELECT * FROM CartItem ci WHERE ci.CART_ID = ?");
            let items = ctx.session.raw(&q, &[cart_id], loc!("f9::readItems"))?;
            for row in &items.rows {
                if let Some(pid) = row.get("ci.P_ID").and_then(|v| v.as_int()) {
                    ids.push(pid);
                }
            }
        }
        ctx.session.commit(loc!("f9::prefetch"))?;
        if let Some(extra) = extra_product {
            ids.push(extra);
        }
        ids.sort_unstable();
        ids.dedup();
        Ok(ids
            .into_iter()
            .map(|id| ctx.locks.lock(&format!("shopizer.product.{id}")))
            .collect())
    }

    fn lookup_cart(&self, ctx: &mut AppCtx<'_>, user_id: &SymValue) -> Result<EntityRef, OrmError> {
        let q = sql("SELECT * FROM Cart c WHERE c.C_ID = ?");
        let rows = ctx
            .session
            .query(&q, std::slice::from_ref(user_id), loc!("lookupCart"))?;
        rows.first()
            .map(|r| r["c"].clone())
            .ok_or_else(|| OrmError::AppAbort("no cart for customer".into()))
    }

    fn load_items(
        &self,
        ctx: &mut AppCtx<'_>,
        cart_id: &SymValue,
        loc: CodeLoc,
    ) -> Result<Vec<EntityRef>, OrmError> {
        let q = sql("SELECT * FROM CartItem ci WHERE ci.CART_ID = ?");
        let rows = ctx.session.query(&q, std::slice::from_ref(cart_id), loc)?;
        Ok(rows.iter().map(|r| r["ci"].clone()).collect())
    }

    /// Optionally sort items by product id with *recorded* comparisons —
    /// the f10/f11 "same locking order" fixes. The comparison branches
    /// land in the path conditions, which is precisely what lets the
    /// fine-grained analyzer prove the sorted variant free of ordering
    /// deadlocks.
    fn maybe_sorted(
        &self,
        ctx: &mut AppCtx<'_>,
        mut items: Vec<EntityRef>,
        sorted: bool,
        loc: CodeLoc,
    ) -> Vec<EntityRef> {
        if !sorted {
            return items;
        }
        let engine: EngineRef = ctx.engine.clone();
        for i in 1..items.len() {
            let mut j = i;
            while j > 0 {
                let a = items[j - 1].get("P_ID");
                let b = items[j].get("P_ID");
                let out_of_order = {
                    let mut e = engine.borrow_mut();
                    let c = e.cmp(CmpOp::Gt, &a, &b);
                    e.branch(&c, loc)
                };
                if out_of_order {
                    items.swap(j - 1, j);
                    j -= 1;
                } else {
                    break;
                }
            }
        }
        items
    }

    /// The pricing routine shared by Ship and Checkout: read each product
    /// of the cart and bump its `PRICED` counter (read-modify-write of
    /// shared rows — d14/d15/d16).
    fn price_products(
        &self,
        ctx: &mut AppCtx<'_>,
        cart_id: &SymValue,
    ) -> Result<Vec<EntityRef>, OrmError> {
        let items = self.load_items(ctx, cart_id, loc!("priceProducts::loadItems"))?;
        let ordered = self.maybe_sorted(
            ctx,
            items.clone(),
            ctx.fixes.on(Fix::F10),
            loc!("priceProducts::sortUpdates"),
        );
        for item in &ordered {
            let pid = item.get("P_ID");
            let p = ctx
                .session
                .find("Product", &pid, loc!("priceProducts"))?
                .ok_or_else(|| OrmError::AppAbort("dangling cart item".into()))?;
            let priced = p.get("PRICED");
            let one = SymValue::concrete(1i64);
            let bumped = ctx.engine.borrow_mut().add(&priced, &one);
            p.set(&ctx.engine, "PRICED", bumped, loc!("priceProducts"));
        }
        Ok(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::Fixes;
    use crate::locks::AppLocks;
    use weseer_concolic::{shared, ExecMode};
    use weseer_db::Database;

    fn setup() -> Database {
        let db = Database::new(Shopizer::catalog());
        Shopizer::seed(&db);
        db
    }

    fn ctx<'a>(db: &'a Database, fixes: &'a Fixes, locks: &'a AppLocks) -> AppCtx<'a> {
        AppCtx::new(db, shared(ExecMode::Native), fixes, locks)
    }

    fn full_flow(fixes: &Fixes) {
        let db = setup();
        let locks = AppLocks::new();
        let app = Shopizer;
        let mut c = ctx(&db, fixes, &locks);
        let uid = app
            .register(&mut c, "dave".into(), "d@x".into(), "p".into(), "p".into())
            .unwrap();
        assert_eq!(db.count("Cart"), 1);
        for (pid, n) in [(3i64, 1i64), (7, 2), (3, 5)] {
            let mut c = ctx(&db, fixes, &locks);
            app.add_to_cart(&mut c, uid.clone(), pid.into(), n.into())
                .unwrap();
        }
        assert_eq!(db.count("CartItem"), 2);
        let mut c = ctx(&db, fixes, &locks);
        app.ship(&mut c, uid.clone(), "Paris".into()).unwrap();
        assert_eq!(db.count("Address"), 1);
        // Pricing bumped both products once.
        let priced: i64 = db
            .dump("Product")
            .iter()
            .map(|r| r[4].as_int().unwrap())
            .sum();
        assert_eq!(priced, 2);

        let mut c = ctx(&db, fixes, &locks);
        app.checkout(&mut c, uid.clone()).unwrap();
        assert_eq!(db.count("Orders"), 1);
        assert_eq!(db.count("OrderItem"), 2);
        // Stock decremented: p3 by 5 (upsert replaced qty), p7 by 2.
        let products = db.dump("Product");
        let p3 = products.iter().find(|r| r[0] == Value::Int(3)).unwrap();
        assert_eq!(p3[2], Value::Int(100_000 - 5));
        let p7 = products.iter().find(|r| r[0] == Value::Int(7)).unwrap();
        assert_eq!(p7[2], Value::Int(100_000 - 2));
    }

    #[test]
    fn full_flow_without_fixes() {
        full_flow(&Fixes::none());
    }

    #[test]
    fn full_flow_with_all_fixes() {
        full_flow(&Fixes::all());
    }

    #[test]
    fn full_flow_each_fix_disabled() {
        for fix in Fix::SHOPIZER {
            full_flow(&Fixes::all_but(fix));
        }
    }

    #[test]
    fn checkout_rejects_oversized_order() {
        let db = setup();
        // One unit in stock.
        let fixes = Fixes::none();
        let locks = AppLocks::new();
        let app = Shopizer;
        let mut c = ctx(&db, &fixes, &locks);
        let uid = app
            .register(&mut c, "eve".into(), "e@x".into(), "p".into(), "p".into())
            .unwrap();
        let mut c = ctx(&db, &fixes, &locks);
        app.add_to_cart(&mut c, uid.clone(), 1i64.into(), 1_000_000i64.into())
            .unwrap();
        let mut c = ctx(&db, &fixes, &locks);
        let r = app.checkout(&mut c, uid);
        assert!(matches!(r, Err(OrmError::AppAbort(_))));
        assert_eq!(db.count("Orders"), 0);
        // Stock untouched (transaction rolled back).
        assert_eq!(db.dump("Product")[0][2], Value::Int(100_000));
    }

    #[test]
    fn sorting_orders_items_by_product_id() {
        let db = setup();
        let mut fixes = Fixes::none();
        fixes.enable(Fix::F10);
        let locks = AppLocks::new();
        let app = Shopizer;
        let mut c = ctx(&db, &fixes, &locks);
        let uid = app
            .register(&mut c, "f".into(), "f@x".into(), "p".into(), "p".into())
            .unwrap();
        for pid in [9i64, 2, 5] {
            let mut c = ctx(&db, &fixes, &locks);
            app.add_to_cart(&mut c, uid.clone(), pid.into(), 1i64.into())
                .unwrap();
        }
        let mut c = ctx(&db, &fixes, &locks);
        c.session.begin();
        let cart = app.lookup_cart(&mut c, &uid).unwrap();
        c.session.rollback();
        let mut c2 = ctx(&db, &fixes, &locks);
        c2.session.begin();
        let items = app
            .load_items(&mut c2, &cart.get("ID"), loc!("test"))
            .unwrap();
        let sorted = app.maybe_sorted(&mut c2, items, true, loc!("test"));
        let pids: Vec<i64> = sorted
            .iter()
            .map(|e| e.get("P_ID").as_int().unwrap())
            .collect();
        assert_eq!(pids, vec![2, 5, 9]);
        c2.session.rollback();
    }
}

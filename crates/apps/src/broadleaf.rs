//! Simulated **Broadleaf** e-commerce application (paper Sec. VII-B:
//! Broadleaf 6.0.9, 190K LoC, 13 of the 18 reported deadlocks).
//!
//! The implementation reproduces the deadlock-prone transaction logic of
//! Table II:
//!
//! | id | site | table(s) | fix |
//! |----|------|----------|-----|
//! | d1 | merge-style registration: check username then insert | `Customer` | f1 `persist` |
//! | d2 | check-then-insert cart creation (app-lock protected in prod) | `Cart` | f2 UPSERT |
//! | d3,d4 | create order item: check item then insert/update | `CartItem` | f3 separate SELECT |
//! | d5,d6 | fulfillment items reordered by write-behind | `FulfillmentItem` | f4 early flush |
//! | d7,d8,d9 | cart pricing reads then insert/update | `PriceDetail`,`Offer` | f5 separate SELECT |
//! | d10 | scan addresses then insert | `Address` | f6 insert first |
//! | d11 | Ship-side pricing (same tables as d7) | `PriceDetail`,`Offer` | f7 separate SELECT |
//! | d12,d13 | tax check then insert | `TaxDetail` | f8 separate SELECT |
//!
//! APIs follow Table I: Register, Add (three code paths), Ship, Payment,
//! Checkout.

use crate::ctx::{sql, AppCtx};
use crate::fixtures::Fix;
use weseer_concolic::{builtins, loc, SymValue};
use weseer_orm::{EntityRef, OrmError};
use weseer_sqlir::{Catalog, ColType, TableBuilder, Value};

/// The simulated Broadleaf application.
#[derive(Debug, Default, Clone, Copy)]
pub struct Broadleaf;

impl Broadleaf {
    /// The database schema.
    pub fn catalog() -> Catalog {
        Catalog::new(vec![
            TableBuilder::new("Customer")
                .col("ID", ColType::Int)
                .col("USERNAME", ColType::Str)
                .col("EMAIL", ColType::Str)
                .col("PASSWORD", ColType::Str)
                .primary_key(&["ID"])
                .unique_index("uq_customer_username", &["USERNAME"])
                .build()
                .unwrap(),
            TableBuilder::new("Cart")
                .col("ID", ColType::Int)
                .col("C_ID", ColType::Int)
                .col("STATUS", ColType::Str)
                .primary_key(&["ID"])
                .unique_index("uq_cart_c_id", &["C_ID"])
                .build()
                .unwrap(),
            TableBuilder::new("CartItem")
                .col("ID", ColType::Int)
                .col("CART_ID", ColType::Int)
                .col("P_ID", ColType::Int)
                .col("QTY", ColType::Int)
                .col("PRICE", ColType::Float)
                .primary_key(&["ID"])
                .unique_index("uq_cartitem_cart_product", &["CART_ID", "P_ID"])
                .foreign_key("P_ID", "Product", "ID")
                .build()
                .unwrap(),
            TableBuilder::new("FulfillmentItem")
                .col("ID", ColType::Int)
                .col("CART_ID", ColType::Int)
                .col("CI_ID", ColType::Int)
                .col("QTY", ColType::Int)
                .primary_key(&["ID"])
                .foreign_key("CART_ID", "Cart", "ID")
                .build()
                .unwrap(),
            TableBuilder::new("Address")
                .col("ID", ColType::Int)
                .col("C_ID", ColType::Int)
                .col("CITY", ColType::Str)
                .col("STREET", ColType::Str)
                .primary_key(&["ID"])
                .foreign_key("C_ID", "Customer", "ID")
                .build()
                .unwrap(),
            TableBuilder::new("Payment")
                .col("ID", ColType::Int)
                .col("C_ID", ColType::Int)
                .col("METHOD", ColType::Str)
                .col("AMOUNT", ColType::Float)
                .primary_key(&["ID"])
                .unique_index("uq_payment_c_id", &["C_ID"])
                .build()
                .unwrap(),
            TableBuilder::new("PriceDetail")
                .col("ID", ColType::Int)
                .col("CART_ID", ColType::Int)
                .col("AMOUNT", ColType::Float)
                .primary_key(&["ID"])
                .foreign_key("CART_ID", "Cart", "ID")
                .build()
                .unwrap(),
            TableBuilder::new("TaxDetail")
                .col("ID", ColType::Int)
                .col("CART_ID", ColType::Int)
                .col("AMOUNT", ColType::Float)
                .primary_key(&["ID"])
                .foreign_key("CART_ID", "Cart", "ID")
                .build()
                .unwrap(),
            TableBuilder::new("Offer")
                .col("ID", ColType::Int)
                .col("CODE", ColType::Str)
                .col("USES", ColType::Int)
                .primary_key(&["ID"])
                .build()
                .unwrap(),
            TableBuilder::new("Product")
                .col("ID", ColType::Int)
                .col("NAME", ColType::Str)
                .col("QTY", ColType::Int)
                .col("PRICE", ColType::Float)
                .primary_key(&["ID"])
                .build()
                .unwrap(),
            TableBuilder::new("Orders")
                .col("ID", ColType::Int)
                .col("C_ID", ColType::Int)
                .col("TOTAL", ColType::Float)
                .primary_key(&["ID"])
                .foreign_key("C_ID", "Customer", "ID")
                .build()
                .unwrap(),
            TableBuilder::new("OrderItem")
                .col("ID", ColType::Int)
                .col("O_ID", ColType::Int)
                .col("P_ID", ColType::Int)
                .col("QTY", ColType::Int)
                .primary_key(&["ID"])
                .foreign_key("O_ID", "Orders", "ID")
                .foreign_key("P_ID", "Product", "ID")
                .build()
                .unwrap(),
        ])
        .unwrap()
    }

    /// Seed the catalog data: products and site-wide offers.
    pub fn seed(db: &weseer_db::Database) {
        let products = (1..=20)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::str(format!("product-{i}")),
                    Value::Int(100_000),
                    Value::Float(25.0),
                ]
            })
            .collect();
        db.seed("Product", products);
        db.bump_id("Product", 20);
        let offers = (1..=5)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::str(format!("OFFER{i}")),
                    Value::Int(0),
                ]
            })
            .collect();
        db.seed("Offer", offers);
        db.bump_id("Offer", 5);
    }

    // ------------------------------------------------------------------
    // Register
    // ------------------------------------------------------------------

    /// The Register API: create a new user.
    ///
    /// Unfixed (d1): a merge-style check of the username (an empty SELECT
    /// acquiring a range lock on `uq_customer_username`) followed by the
    /// INSERT. Fix f1 uses `persist` semantics: INSERT only.
    pub fn register(
        &self,
        ctx: &mut AppCtx<'_>,
        username: SymValue,
        email: SymValue,
        password: SymValue,
        confirm: SymValue,
    ) -> Result<SymValue, OrmError> {
        let _f = weseer_concolic::engine::frame(&ctx.engine, loc!("Register"));
        // Validate the confirmation (symbolic string equality + branch).
        let ok = {
            let mut e = ctx.engine.borrow_mut();
            let c = builtins::string_equals(&mut e, &password, &confirm);
            e.branch(&c, loc!("Register"))
        };
        if !ok {
            return Err(OrmError::AppAbort("password confirmation mismatch".into()));
        }
        ctx.session.begin();
        if !ctx.fixes.on(Fix::F1) {
            // d1: `merge` issues a SELECT before the INSERT.
            let q = sql("SELECT * FROM Customer c WHERE c.USERNAME = ?");
            let rs =
                ctx.session
                    .raw(&q, std::slice::from_ref(&username), loc!("Register::merge"))?;
            if !rs.is_empty() {
                ctx.session.rollback();
                return Err(OrmError::AppAbort("username already registered".into()));
            }
        }
        let id = ctx.gen_id("Customer");
        ctx.session.persist(
            "Customer",
            vec![
                ("ID".into(), id.clone()),
                ("USERNAME".into(), username),
                ("EMAIL".into(), email),
                ("PASSWORD".into(), password),
            ],
            loc!("Register::save"),
        );
        ctx.session.commit(loc!("Register"))?;
        Ok(id)
    }

    // ------------------------------------------------------------------
    // Add to cart
    // ------------------------------------------------------------------

    /// The Add API: put `qty` of `product_id` into `user_id`'s cart.
    ///
    /// Three code paths (the workload's Add1/Add2/Add3): no cart yet, cart
    /// without the product, cart already containing the product.
    pub fn add_to_cart(
        &self,
        ctx: &mut AppCtx<'_>,
        user_id: SymValue,
        product_id: SymValue,
        qty: SymValue,
    ) -> Result<(), OrmError> {
        let _f = weseer_concolic::engine::frame(&ctx.engine, loc!("Add"));

        // Pre-phase: fixes f3/f5 run the guarded SELECTs in their own
        // committed transaction so their range locks are released before
        // the main transaction writes.
        let mut pre_item: Option<Option<EntityRef>> = None;
        let mut pre_price: Option<Option<EntityRef>> = None;
        let mut pre_offer: Option<EntityRef> = None;
        let mut pre_cart: Option<Option<EntityRef>> = None;
        if ctx.fixes.on(Fix::F3) || ctx.fixes.on(Fix::F5) {
            ctx.session.begin();
            let cart = self.lookup_cart(ctx, &user_id)?;
            if ctx.fixes.on(Fix::F5) {
                pre_offer = Some(self.read_offer(ctx, &user_id)?);
                match &cart {
                    Some(cart) => pre_price = Some(self.read_price_detail(ctx, cart)?),
                    // A cart created by this request cannot have details.
                    None => pre_price = Some(None),
                }
            }
            if ctx.fixes.on(Fix::F3) {
                match &cart {
                    Some(cart) => {
                        let cart_id = cart.get("ID");
                        pre_item = Some(self.lookup_item(ctx, &cart_id, &product_id)?);
                    }
                    // No cart yet: the item cannot exist either.
                    None => pre_item = Some(None),
                }
            }
            pre_cart = Some(cart);
            ctx.session.commit(loc!("Add::prefetch"))?;
        }

        ctx.session.begin();
        // Cart lookup / creation (d2, f2).
        let cart = match (&pre_cart, ctx.fixes.on(Fix::F2)) {
            (Some(Some(cart)), _) => cart.clone(),
            _ => {
                if ctx.fixes.on(Fix::F2) {
                    // UPSERT the cart, then read it back (row exists now,
                    // so the SELECT takes record locks, not gap locks).
                    let id = ctx.gen_id("Cart");
                    ctx.session.upsert(
                        "Cart",
                        vec![
                            ("ID".into(), id),
                            ("C_ID".into(), user_id.clone()),
                            ("STATUS".into(), SymValue::concrete("ACTIVE")),
                        ],
                        &["STATUS"],
                        loc!("Add::ensureCart"),
                    )?;
                    self.lookup_cart(ctx, &user_id)?
                        .expect("cart exists after upsert")
                } else {
                    // d2: check-then-insert (protected by app-level locks
                    // in the real application, invisible to the database).
                    match self.lookup_cart(ctx, &user_id)? {
                        Some(cart) => cart,
                        None => {
                            let id = ctx.gen_id("Cart");
                            ctx.session.persist(
                                "Cart",
                                vec![
                                    ("ID".into(), id),
                                    ("C_ID".into(), user_id.clone()),
                                    ("STATUS".into(), SymValue::concrete("ACTIVE")),
                                ],
                                loc!("Add::createCart"),
                            )
                        }
                    }
                }
            }
        };
        let cart_id = cart.get("ID");
        let fresh_cart = matches!(cart.status(), weseer_orm::EntityStatus::New);

        // Order-item section (d3/d4, f3): check the item, then insert or
        // bump the quantity.
        let item = if fresh_cart {
            None // a cart created in this request cannot contain the item
        } else {
            match pre_item {
                Some(i) => i,
                None => self.lookup_item(ctx, &cart_id, &product_id)?,
            }
        };
        let item_entity = match item {
            Some(item) => {
                // Existing item: bump the quantity (buffered UPDATE).
                let old = item.get("QTY");
                let new = ctx.engine.borrow_mut().add(&old, &qty);
                item.set(&ctx.engine, "QTY", new, loc!("Add::bumpItemQty"));
                item
            }
            None => {
                let id = ctx.gen_id("CartItem");
                ctx.session.persist(
                    "CartItem",
                    vec![
                        ("ID".into(), id),
                        ("CART_ID".into(), cart_id.clone()),
                        ("P_ID".into(), product_id.clone()),
                        ("QTY".into(), qty.clone()),
                        ("PRICE".into(), SymValue::concrete(Value::Float(25.0))),
                    ],
                    loc!("Add::createItem"),
                )
            }
        };

        // Fulfillment section (d5/d6, f4): the fulfillment item is
        // persisted *before* the coverage scan, but the write-behind cache
        // defers its INSERT past the SELECT unless the fix flushes early.
        let fid = ctx.gen_id("FulfillmentItem");
        ctx.session.persist(
            "FulfillmentItem",
            vec![
                ("ID".into(), fid),
                ("CART_ID".into(), cart_id.clone()),
                ("CI_ID".into(), item_entity.get("ID")),
                ("QTY".into(), qty.clone()),
            ],
            loc!("Add::createFulfillment"),
        );
        if ctx.fixes.on(Fix::F4) {
            ctx.session.flush(loc!("Add::earlyFlush"))?;
        }
        let q = sql("SELECT * FROM FulfillmentItem fi WHERE fi.CART_ID = ?");
        let _coverage = ctx.session.raw(
            &q,
            std::slice::from_ref(&cart_id),
            loc!("Add::checkFulfillment"),
        )?;

        // Pricing section (d7/d8/d9, f5).
        let (price_detail, offer) = match (pre_price, pre_offer) {
            (Some(pd), Some(offer)) => (pd, offer),
            _ => self.read_pricing(ctx, &user_id, &cart)?,
        };
        self.apply_pricing(ctx, &cart_id, price_detail, offer)?;

        ctx.session.commit(loc!("Add"))?;
        Ok(())
    }

    fn lookup_cart(
        &self,
        ctx: &mut AppCtx<'_>,
        user_id: &SymValue,
    ) -> Result<Option<EntityRef>, OrmError> {
        let q = sql("SELECT * FROM Cart c WHERE c.C_ID = ?");
        let rows = ctx
            .session
            .query(&q, std::slice::from_ref(user_id), loc!("Add::lookupCart"))?;
        Ok(rows.first().map(|r| r["c"].clone()))
    }

    fn lookup_item(
        &self,
        ctx: &mut AppCtx<'_>,
        cart_id: &SymValue,
        product_id: &SymValue,
    ) -> Result<Option<EntityRef>, OrmError> {
        let q = sql("SELECT * FROM CartItem ci WHERE ci.CART_ID = ? AND ci.P_ID = ?");
        let rows = ctx.session.query(
            &q,
            &[cart_id.clone(), product_id.clone()],
            loc!("Add::checkItem"),
        )?;
        Ok(rows.first().map(|r| r["ci"].clone()))
    }

    /// The pricing reads: the cart's price details plus the site-wide
    /// offer row (shared across customers — hot at runtime).
    fn read_pricing(
        &self,
        ctx: &mut AppCtx<'_>,
        user_id: &SymValue,
        cart: &EntityRef,
    ) -> Result<(Option<EntityRef>, EntityRef), OrmError> {
        let detail = self.read_price_detail(ctx, cart)?;
        let offer = self.read_offer(ctx, user_id)?;
        Ok((detail, offer))
    }

    fn read_price_detail(
        &self,
        ctx: &mut AppCtx<'_>,
        cart: &EntityRef,
    ) -> Result<Option<EntityRef>, OrmError> {
        let cart_id = cart.get("ID");
        let q = sql("SELECT * FROM PriceDetail pd WHERE pd.CART_ID = ?");
        let rows = ctx
            .session
            .query(&q, &[cart_id], loc!("priceCart::readDetails"))?;
        Ok(rows.first().map(|r| r["pd"].clone()))
    }

    fn read_offer(&self, ctx: &mut AppCtx<'_>, user_id: &SymValue) -> Result<EntityRef, OrmError> {
        // Offer selection is data-independent enough to stay concrete.
        let offer_id = user_id.as_int().unwrap_or(1).rem_euclid(5) + 1;
        let offer = ctx
            .session
            .find(
                "Offer",
                &SymValue::concrete(offer_id),
                loc!("priceCart::readOffer"),
            )?
            .expect("seeded offer exists");
        Ok(offer)
    }

    /// The pricing writes: create or adjust the price detail and count the
    /// offer use (read-modify-write of a shared row).
    fn apply_pricing(
        &self,
        ctx: &mut AppCtx<'_>,
        cart_id: &SymValue,
        detail: Option<EntityRef>,
        offer: EntityRef,
    ) -> Result<(), OrmError> {
        match detail {
            None => {
                let id = ctx.gen_id("PriceDetail");
                ctx.session.persist(
                    "PriceDetail",
                    vec![
                        ("ID".into(), id),
                        ("CART_ID".into(), cart_id.clone()),
                        ("AMOUNT".into(), SymValue::concrete(Value::Float(25.0))),
                    ],
                    loc!("priceCart::createDetail"),
                );
            }
            Some(detail) => {
                let amount = detail.get("AMOUNT");
                let bump = SymValue::concrete(Value::Float(25.0));
                let new = ctx.engine.borrow_mut().add(&amount, &bump);
                detail.set(&ctx.engine, "AMOUNT", new, loc!("priceCart::adjustDetail"));
            }
        }
        let uses = offer.get("USES");
        let one = SymValue::concrete(1i64);
        let new_uses = ctx.engine.borrow_mut().add(&uses, &one);
        offer.set(
            &ctx.engine,
            "USES",
            new_uses,
            loc!("priceCart::countOfferUse"),
        );
        Ok(())
    }

    // ------------------------------------------------------------------
    // Ship
    // ------------------------------------------------------------------

    /// The Ship API: record the shipment address, reprice the cart with
    /// the shipping fee, and compute taxes.
    pub fn ship(
        &self,
        ctx: &mut AppCtx<'_>,
        user_id: SymValue,
        city: SymValue,
        street: SymValue,
        fee: SymValue,
    ) -> Result<(), OrmError> {
        let _f = weseer_concolic::engine::frame(&ctx.engine, loc!("Ship"));

        // Pre-phase for f7 (pricing reads) and f8 (tax check).
        let mut pre_pricing: Option<(Option<EntityRef>, EntityRef)> = None;
        let mut pre_tax_missing: Option<bool> = None;
        if ctx.fixes.on(Fix::F7) || ctx.fixes.on(Fix::F8) {
            ctx.session.begin();
            let cart = self
                .lookup_cart(ctx, &user_id)?
                .ok_or_else(|| OrmError::AppAbort("no active cart".into()))?;
            if ctx.fixes.on(Fix::F7) {
                pre_pricing = Some(self.read_pricing(ctx, &user_id, &cart)?);
            }
            if ctx.fixes.on(Fix::F8) {
                let cart_id = cart.get("ID");
                let q = sql("SELECT * FROM TaxDetail td WHERE td.CART_ID = ?");
                let rs = ctx.session.raw(&q, &[cart_id], loc!("Ship::checkTax"))?;
                pre_tax_missing = Some(rs.is_empty());
            }
            ctx.session.commit(loc!("Ship::prefetch"))?;
        }

        ctx.session.begin();
        let customer = ctx
            .session
            .find("Customer", &user_id, loc!("Ship::loadCustomer"))?
            .ok_or_else(|| OrmError::AppAbort("unknown customer".into()))?;
        let _ = customer;
        let cart = self
            .lookup_cart(ctx, &user_id)?
            .ok_or_else(|| OrmError::AppAbort("no active cart".into()))?;
        let cart_id = cart.get("ID");

        // Address section (d10, f6): the shipped code scans the customer's
        // addresses (empty → range lock) and then inserts; the fix inserts
        // first (flushing eagerly) and scans afterwards.
        let persist_address = |ctx: &mut AppCtx<'_>| {
            let id = ctx.gen_id("Address");
            ctx.session.persist(
                "Address",
                vec![
                    ("ID".into(), id),
                    ("C_ID".into(), user_id.clone()),
                    ("CITY".into(), city.clone()),
                    ("STREET".into(), street.clone()),
                ],
                loc!("Ship::saveAddress"),
            );
        };
        let scan_addresses = |ctx: &mut AppCtx<'_>| -> Result<usize, OrmError> {
            let q = sql("SELECT * FROM Address a WHERE a.C_ID = ?");
            let rs = ctx.session.raw(
                &q,
                std::slice::from_ref(&user_id),
                loc!("Ship::scanAddresses"),
            )?;
            Ok(rs.len())
        };
        if ctx.fixes.on(Fix::F6) {
            persist_address(ctx);
            ctx.session.flush(loc!("Ship::flushAddress"))?;
            scan_addresses(ctx)?;
        } else {
            scan_addresses(ctx)?;
            persist_address(ctx);
        }

        // Pricing section (d11 via f7 — same sites as Add's d7/d8).
        let (detail, offer) = match pre_pricing {
            Some(p) => p,
            None => self.read_pricing(ctx, &user_id, &cart)?,
        };
        // Fold the shipping fee into the price detail.
        if let Some(detail) = &detail {
            let amount = detail.get("AMOUNT");
            let new = ctx.engine.borrow_mut().add(&amount, &fee);
            detail.set(&ctx.engine, "AMOUNT", new, loc!("Ship::addShippingFee"));
        }
        self.apply_pricing(ctx, &cart_id, detail, offer)?;

        // Tax section (d12/d13, f8): check-then-insert.
        let tax_missing = match pre_tax_missing {
            Some(m) => m,
            None => {
                let q = sql("SELECT * FROM TaxDetail td WHERE td.CART_ID = ?");
                let rs =
                    ctx.session
                        .raw(&q, std::slice::from_ref(&cart_id), loc!("Ship::checkTax"))?;
                rs.is_empty()
            }
        };
        if tax_missing {
            let id = ctx.gen_id("TaxDetail");
            ctx.session.persist(
                "TaxDetail",
                vec![
                    ("ID".into(), id),
                    ("CART_ID".into(), cart_id.clone()),
                    ("AMOUNT".into(), SymValue::concrete(Value::Float(2.5))),
                ],
                loc!("Ship::createTax"),
            );
        }
        ctx.session.commit(loc!("Ship"))?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Payment
    // ------------------------------------------------------------------

    /// The Payment API: record the customer's payment method (UPSERT — no
    /// deadlock-prone logic, matching Table II where Payment appears in no
    /// deadlock).
    pub fn payment(
        &self,
        ctx: &mut AppCtx<'_>,
        user_id: SymValue,
        method: SymValue,
        amount: SymValue,
    ) -> Result<(), OrmError> {
        let _f = weseer_concolic::engine::frame(&ctx.engine, loc!("Payment"));
        ctx.session.begin();
        let id = ctx.gen_id("Payment");
        ctx.session.upsert(
            "Payment",
            vec![
                ("ID".into(), id),
                ("C_ID".into(), user_id),
                ("METHOD".into(), method),
                ("AMOUNT".into(), amount),
            ],
            &["METHOD", "AMOUNT"],
            loc!("Payment::save"),
        )?;
        ctx.session.commit(loc!("Payment"))?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Checkout
    // ------------------------------------------------------------------

    /// The Checkout API: turn the cart into an order.
    pub fn checkout(&self, ctx: &mut AppCtx<'_>, user_id: SymValue) -> Result<(), OrmError> {
        let _f = weseer_concolic::engine::frame(&ctx.engine, loc!("Checkout"));
        ctx.session.begin();
        let cart = self
            .lookup_cart(ctx, &user_id)?
            .ok_or_else(|| OrmError::AppAbort("no active cart".into()))?;
        let cart_id = cart.get("ID");
        let q = sql(
            "SELECT * FROM CartItem ci JOIN Product p ON p.ID = ci.P_ID \
             WHERE ci.CART_ID = ?",
        );
        let rows = ctx
            .session
            .query(&q, &[cart_id], loc!("Checkout::loadItems"))?;
        if rows.is_empty() {
            ctx.session.rollback();
            return Err(OrmError::AppAbort("empty cart".into()));
        }
        let order_id = ctx.gen_id("Orders");
        let mut total = SymValue::concrete(Value::Float(0.0));
        for row in &rows {
            let ci = &row["ci"];
            let price = ci.get("PRICE");
            total = ctx.engine.borrow_mut().add(&total, &price);
        }
        ctx.session.persist(
            "Orders",
            vec![
                ("ID".into(), order_id.clone()),
                ("C_ID".into(), user_id.clone()),
                ("TOTAL".into(), total),
            ],
            loc!("Checkout::createOrder"),
        );
        for row in &rows {
            let ci = &row["ci"];
            let oi = ctx.gen_id("OrderItem");
            ctx.session.persist(
                "OrderItem",
                vec![
                    ("ID".into(), oi),
                    ("O_ID".into(), order_id.clone()),
                    ("P_ID".into(), ci.get("P_ID")),
                    ("QTY".into(), ci.get("QTY")),
                ],
                loc!("Checkout::createOrderItem"),
            );
        }
        ctx.session.commit(loc!("Checkout"))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::Fixes;
    use crate::locks::AppLocks;
    use weseer_concolic::{shared, ExecMode};
    use weseer_db::Database;

    fn setup() -> Database {
        let db = Database::new(Broadleaf::catalog());
        Broadleaf::seed(&db);
        db
    }

    fn ctx<'a>(db: &'a Database, fixes: &'a Fixes, locks: &'a AppLocks) -> AppCtx<'a> {
        let engine = shared(ExecMode::Native);
        AppCtx::new(db, engine, fixes, locks)
    }

    #[test]
    fn register_creates_customer() {
        let db = setup();
        let fixes = Fixes::none();
        let locks = AppLocks::new();
        let mut c = ctx(&db, &fixes, &locks);
        let id = Broadleaf
            .register(
                &mut c,
                "alice".into(),
                "a@example.com".into(),
                "pw".into(),
                "pw".into(),
            )
            .unwrap();
        assert_eq!(id.as_int(), Some(1));
        assert_eq!(db.count("Customer"), 1);
    }

    #[test]
    fn register_rejects_password_mismatch() {
        let db = setup();
        let fixes = Fixes::none();
        let locks = AppLocks::new();
        let mut c = ctx(&db, &fixes, &locks);
        let r = Broadleaf.register(&mut c, "a".into(), "e".into(), "x".into(), "y".into());
        assert!(matches!(r, Err(OrmError::AppAbort(_))));
        assert_eq!(db.count("Customer"), 0);
    }

    #[test]
    fn register_duplicate_detected_both_ways() {
        let db = setup();
        let locks = AppLocks::new();
        for fixes in [Fixes::none(), Fixes::all()] {
            let mut c = ctx(&db, &fixes, &locks);
            let user = format!("bob-{fixes}");
            Broadleaf
                .register(
                    &mut c,
                    user.as_str().into(),
                    "e".into(),
                    "p".into(),
                    "p".into(),
                )
                .unwrap();
            let mut c = ctx(&db, &fixes, &locks);
            let r = Broadleaf.register(
                &mut c,
                user.as_str().into(),
                "e".into(),
                "p".into(),
                "p".into(),
            );
            assert!(r.is_err(), "duplicate must be rejected with fixes={fixes}");
        }
    }

    fn full_flow(fixes: &Fixes) {
        let db = setup();
        let locks = AppLocks::new();
        let app = Broadleaf;
        let mut c = ctx(&db, fixes, &locks);
        let uid = app
            .register(&mut c, "carol".into(), "c@x".into(), "p".into(), "p".into())
            .unwrap();
        for (pid, n) in [(1i64, 1i64), (2, 2), (1, 1)] {
            let mut c = ctx(&db, fixes, &locks);
            app.add_to_cart(&mut c, uid.clone(), pid.into(), n.into())
                .unwrap();
        }
        assert_eq!(db.count("Cart"), 1);
        assert_eq!(db.count("CartItem"), 2);
        assert_eq!(db.count("FulfillmentItem"), 3);
        assert_eq!(db.count("PriceDetail"), 1);
        // The item added twice accumulated quantity.
        let items = db.dump("CartItem");
        let p1 = items.iter().find(|r| r[2] == Value::Int(1)).unwrap();
        assert_eq!(p1[3], Value::Int(2));

        let mut c = ctx(&db, fixes, &locks);
        app.ship(
            &mut c,
            uid.clone(),
            "NYC".into(),
            "5th Ave".into(),
            Value::Float(5.0).into(),
        )
        .unwrap();
        assert_eq!(db.count("Address"), 1);
        assert_eq!(db.count("TaxDetail"), 1);

        let mut c = ctx(&db, fixes, &locks);
        app.payment(
            &mut c,
            uid.clone(),
            "VISA".into(),
            Value::Float(55.0).into(),
        )
        .unwrap();
        assert_eq!(db.count("Payment"), 1);

        let mut c = ctx(&db, fixes, &locks);
        app.checkout(&mut c, uid.clone()).unwrap();
        assert_eq!(db.count("Orders"), 1);
        assert_eq!(db.count("OrderItem"), 2);

        // The shared offer rows tracked usage across the 4 pricing runs
        // (3 adds + 1 ship).
        let offers = db.dump("Offer");
        let total_uses: i64 = offers.iter().map(|r| r[2].as_int().unwrap()).sum();
        assert_eq!(total_uses, 4);
    }

    #[test]
    fn full_flow_without_fixes() {
        full_flow(&Fixes::none());
    }

    #[test]
    fn full_flow_with_all_fixes() {
        full_flow(&Fixes::all());
    }

    #[test]
    fn full_flow_each_fix_disabled() {
        for fix in Fix::BROADLEAF {
            full_flow(&Fixes::all_but(fix));
        }
    }
}

//! Application-level locks.
//!
//! Real web applications guard critical sections with ad-hoc, application-
//! side synchronization (Tang et al., cited as [5] in the paper). WeSEER
//! does not model these — they are its main source of false positives
//! (Sec. V-D) — but the performance harness must honor them: fix f9 forces
//! serial execution of Shopizer's product pricing/commit with exactly such
//! a lock.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// A registry of named application-level locks, shared across client
/// threads.
#[derive(Debug, Default, Clone)]
pub struct AppLocks {
    inner: Arc<Mutex<HashMap<String, Arc<Mutex<()>>>>>,
}

/// A held application-level lock.
pub struct AppLockGuard {
    _mutex: Arc<Mutex<()>>,
}

impl AppLocks {
    /// New empty registry.
    pub fn new() -> Self {
        AppLocks::default()
    }

    /// Acquire the named lock, blocking until available.
    pub fn lock(&self, name: &str) -> AppLockGuard {
        let mutex = {
            let mut map = self.inner.lock();
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Mutex::new(())))
                .clone()
        };
        // Hold the mutex for the guard's lifetime by leaking the guard
        // into the Arc: we forget the MutexGuard and unlock manually.
        std::mem::forget(mutex.lock());
        AppLockGuard { _mutex: mutex }
    }
}

impl Drop for AppLockGuard {
    fn drop(&mut self) {
        // Safety: we forgot exactly one guard in `lock`, so the mutex is
        // held by this logical owner.
        unsafe { self._mutex.force_unlock() };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::{Duration, Instant};

    #[test]
    fn serializes_critical_sections() {
        let locks = AppLocks::new();
        let l2 = locks.clone();
        let g = locks.lock("pricing");
        let start = Instant::now();
        let h = thread::spawn(move || {
            let _g = l2.lock("pricing");
            Instant::now()
        });
        thread::sleep(Duration::from_millis(80));
        drop(g);
        let acquired_at = h.join().unwrap();
        assert!(acquired_at.duration_since(start) >= Duration::from_millis(60));
    }

    #[test]
    fn different_names_are_independent() {
        let locks = AppLocks::new();
        let _a = locks.lock("a");
        let _b = locks.lock("b"); // must not block
    }

    #[test]
    fn reacquire_after_drop() {
        let locks = AppLocks::new();
        drop(locks.lock("x"));
        drop(locks.lock("x"));
        let _g = locks.lock("x");
    }
}

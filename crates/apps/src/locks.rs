//! Application-level locks.
//!
//! Real web applications guard critical sections with ad-hoc, application-
//! side synchronization (Tang et al., cited as [5] in the paper). WeSEER
//! does not model these — they are its main source of false positives
//! (Sec. V-D) — but the performance harness must honor them: fix f9 forces
//! serial execution of Shopizer's product pricing/commit with exactly such
//! a lock.

use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::Arc;

/// A binary semaphore: `held` flips under the mutex, waiters park on the
/// condvar. Unlike a raw `Mutex<()>`, ownership can move across threads
/// with the guard (client threads hand work to helpers in the harness).
#[derive(Debug, Default)]
struct Sem {
    held: Mutex<bool>,
    cond: Condvar,
}

/// A registry of named application-level locks, shared across client
/// threads.
#[derive(Debug, Default, Clone)]
pub struct AppLocks {
    inner: Arc<Mutex<HashMap<String, Arc<Sem>>>>,
}

/// A held application-level lock.
pub struct AppLockGuard {
    sem: Arc<Sem>,
}

impl AppLocks {
    /// New empty registry.
    pub fn new() -> Self {
        AppLocks::default()
    }

    /// Acquire the named lock, blocking until available.
    pub fn lock(&self, name: &str) -> AppLockGuard {
        let sem = {
            let mut map = self.inner.lock();
            map.entry(name.to_string()).or_default().clone()
        };
        let mut held = sem.held.lock();
        while *held {
            sem.cond.wait(&mut held);
        }
        *held = true;
        drop(held);
        AppLockGuard { sem }
    }
}

impl Drop for AppLockGuard {
    fn drop(&mut self) {
        *self.sem.held.lock() = false;
        self.sem.cond.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::{Duration, Instant};

    #[test]
    fn serializes_critical_sections() {
        let locks = AppLocks::new();
        let l2 = locks.clone();
        let g = locks.lock("pricing");
        let start = Instant::now();
        let h = thread::spawn(move || {
            let _g = l2.lock("pricing");
            Instant::now()
        });
        thread::sleep(Duration::from_millis(80));
        drop(g);
        let acquired_at = h.join().unwrap();
        assert!(acquired_at.duration_since(start) >= Duration::from_millis(60));
    }

    #[test]
    fn different_names_are_independent() {
        let locks = AppLocks::new();
        let _a = locks.lock("a");
        let _b = locks.lock("b"); // must not block
    }

    #[test]
    fn reacquire_after_drop() {
        let locks = AppLocks::new();
        drop(locks.lock("x"));
        drop(locks.lock("x"));
        let _g = locks.lock("x");
    }
}

//! # weseer-apps
//!
//! Simulated versions of the two e-commerce applications the paper
//! evaluates — **Broadleaf** (190K LoC) and **Shopizer** (92K LoC) —
//! written against the `weseer-orm`/`weseer-concolic` runtime so their
//! transaction logic can be traced concolically, analyzed for deadlocks,
//! and driven by the multi-threaded performance harness.
//!
//! The applications carry exactly the deadlock-prone patterns of paper
//! Table II (d1–d18) behind fix toggles f1–f11, plus the Table I API set
//! (Register, Add×3, Ship, Payment, Checkout).

pub mod app;
pub mod broadleaf;
pub mod classify;
pub mod ctx;
pub mod fixtures;
pub mod locks;
pub mod report;
pub mod shopizer;
pub mod workload;

pub use app::ECommerceApp;
pub use broadleaf::Broadleaf;
pub use classify::{classify, KnownDeadlock};
pub use ctx::AppCtx;
pub use fixtures::{Fix, Fixes};
pub use locks::AppLocks;
pub use report::witnessed_report;
pub use shopizer::Shopizer;

//! The application abstraction: Table I unit tests and the client
//! workload, uniformly over Broadleaf and Shopizer.

use crate::broadleaf::Broadleaf;
use crate::ctx::AppCtx;
use crate::fixtures::Fixes;
use crate::locks::AppLocks;
use crate::shopizer::Shopizer;
use weseer_concolic::{shared, take_ctx, ExecMode, LibraryMode, SymValue, Trace};
use weseer_db::Database;
use weseer_orm::OrmError;
use weseer_sqlir::{Catalog, Value};

/// Per-client state threaded through a workload iteration.
#[derive(Debug, Clone)]
pub struct ClientState {
    /// Client (thread) number.
    pub client_id: usize,
    /// Iteration counter.
    pub iter: u64,
    /// Customer id returned by Register, used by the later APIs.
    pub user_id: Option<SymValue>,
    /// First product of this iteration.
    pub product_a: i64,
    /// Second product of this iteration.
    pub product_b: i64,
}

impl ClientState {
    /// Fresh state for a client.
    pub fn new(client_id: usize) -> Self {
        ClientState {
            client_id,
            iter: 0,
            user_id: None,
            product_a: 1,
            product_b: 2,
        }
    }

    /// Advance to the next iteration, repicking products from the hot set
    /// with a deterministic mix (no RNG needed for contention).
    pub fn next_iteration(&mut self, hot_products: i64) {
        self.iter += 1;
        let mix = |x: u64| -> u64 {
            let mut h = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            h ^= h >> 29;
            h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            h ^ (h >> 32)
        };
        let seed = mix(self.iter.wrapping_add((self.client_id as u64) << 32));
        self.product_a = 1 + (seed % hot_products as u64) as i64;
        self.product_b = 1 + ((seed >> 8) % hot_products as u64) as i64;
        if self.product_b == self.product_a {
            self.product_b = 1 + (self.product_b % hot_products);
            if self.product_b == self.product_a {
                self.product_b = 1 + (self.product_a % hot_products);
            }
        }
        self.user_id = None;
    }

    fn user(&self) -> Result<SymValue, OrmError> {
        self.user_id
            .clone()
            .ok_or_else(|| OrmError::AppAbort("client has no registered user".into()))
    }
}

/// A simulated e-commerce application.
pub trait ECommerceApp: Sync {
    /// Application name (`"broadleaf"` / `"shopizer"`).
    fn name(&self) -> &'static str;
    /// Schema.
    fn catalog(&self) -> Catalog;
    /// Seed catalog data.
    fn seed(&self, db: &Database);
    /// Table I unit tests, in the paper's chaining order.
    fn unit_tests(&self) -> &'static [&'static str];
    /// Run one unit test with canonical inputs marked symbolic.
    fn run_unit_test(&self, ctx: &mut AppCtx<'_>, test: &str) -> Result<(), OrmError>;
    /// Run one API call of the client workload with concrete inputs.
    fn run_client_api(
        &self,
        ctx: &mut AppCtx<'_>,
        api: &str,
        client: &mut ClientState,
    ) -> Result<(), OrmError>;
}

impl ECommerceApp for Broadleaf {
    fn name(&self) -> &'static str {
        "broadleaf"
    }

    fn catalog(&self) -> Catalog {
        Broadleaf::catalog()
    }

    fn seed(&self, db: &Database) {
        Broadleaf::seed(db);
    }

    fn unit_tests(&self) -> &'static [&'static str] {
        &[
            "Register", "Add1", "Add2", "Add3", "Ship", "Payment", "Checkout",
        ]
    }

    fn run_unit_test(&self, ctx: &mut AppCtx<'_>, test: &str) -> Result<(), OrmError> {
        let s =
            |name: &str, v: Value| -> SymValue { ctx.engine.borrow_mut().make_symbolic(name, v) };
        match test {
            "Register" => {
                let username = s("username", Value::str("alice"));
                let email = s("email", Value::str("alice@example.com"));
                let password = s("password", Value::str("hunter2"));
                let confirm = s("password_confirm", Value::str("hunter2"));
                self.register(ctx, username, email, password, confirm)
                    .map(|_| ())
            }
            "Add1" | "Add2" | "Add3" => {
                let (pid, qty) = match test {
                    "Add1" => (1, 1),
                    "Add2" => (2, 2),
                    _ => (1, 1),
                };
                let user = s("user_id", Value::Int(1));
                let product = s("product_id", Value::Int(pid));
                let qty = s("qty", Value::Int(qty));
                self.add_to_cart(ctx, user, product, qty)
            }
            "Ship" => {
                let user = s("user_id", Value::Int(1));
                let city = s("city", Value::str("NYC"));
                let street = s("street", Value::str("5th Ave"));
                let fee = s("shipping_fee", Value::Float(5.0));
                self.ship(ctx, user, city, street, fee)
            }
            "Payment" => {
                let user = s("user_id", Value::Int(1));
                let method = s("payment_method", Value::str("VISA"));
                let amount = s("amount", Value::Float(55.0));
                self.payment(ctx, user, method, amount)
            }
            "Checkout" => {
                let user = s("user_id", Value::Int(1));
                self.checkout(ctx, user)
            }
            other => panic!("unknown Broadleaf unit test {other:?}"),
        }
    }

    fn run_client_api(
        &self,
        ctx: &mut AppCtx<'_>,
        api: &str,
        client: &mut ClientState,
    ) -> Result<(), OrmError> {
        match api {
            "Register" => {
                let name = format!("bl-u{}-{}", client.client_id, client.iter);
                let id = self.register(
                    ctx,
                    name.as_str().into(),
                    "x@example.com".into(),
                    "pw".into(),
                    "pw".into(),
                )?;
                client.user_id = Some(id);
                Ok(())
            }
            "Add1" => self.add_to_cart(ctx, client.user()?, client.product_a.into(), 1i64.into()),
            "Add2" => self.add_to_cart(ctx, client.user()?, client.product_b.into(), 2i64.into()),
            "Add3" => self.add_to_cart(ctx, client.user()?, client.product_a.into(), 1i64.into()),
            "Ship" => self.ship(
                ctx,
                client.user()?,
                "NYC".into(),
                "5th Ave".into(),
                Value::Float(5.0).into(),
            ),
            "Payment" => self.payment(
                ctx,
                client.user()?,
                "VISA".into(),
                Value::Float(55.0).into(),
            ),
            "Checkout" => self.checkout(ctx, client.user()?),
            other => panic!("unknown Broadleaf API {other:?}"),
        }
    }
}

impl ECommerceApp for Shopizer {
    fn name(&self) -> &'static str {
        "shopizer"
    }

    fn catalog(&self) -> Catalog {
        Shopizer::catalog()
    }

    fn seed(&self, db: &Database) {
        Shopizer::seed(db);
    }

    fn unit_tests(&self) -> &'static [&'static str] {
        &["Register", "Add1", "Add2", "Add3", "Ship", "Checkout"]
    }

    fn run_unit_test(&self, ctx: &mut AppCtx<'_>, test: &str) -> Result<(), OrmError> {
        let s =
            |name: &str, v: Value| -> SymValue { ctx.engine.borrow_mut().make_symbolic(name, v) };
        match test {
            "Register" => {
                let username = s("username", Value::str("bob"));
                let email = s("email", Value::str("bob@example.com"));
                let password = s("password", Value::str("hunter2"));
                let confirm = s("password_confirm", Value::str("hunter2"));
                self.register(ctx, username, email, password, confirm)
                    .map(|_| ())
            }
            "Add1" | "Add2" | "Add3" => {
                let (pid, qty) = match test {
                    "Add1" => (3, 1),
                    "Add2" => (7, 2),
                    _ => (3, 5),
                };
                let user = s("user_id", Value::Int(1));
                let product = s("product_id", Value::Int(pid));
                let qty = s("qty", Value::Int(qty));
                self.add_to_cart(ctx, user, product, qty)
            }
            "Ship" => {
                let user = s("user_id", Value::Int(1));
                let city = s("city", Value::str("Paris"));
                self.ship(ctx, user, city)
            }
            "Checkout" => {
                let user = s("user_id", Value::Int(1));
                self.checkout(ctx, user)
            }
            other => panic!("unknown Shopizer unit test {other:?}"),
        }
    }

    fn run_client_api(
        &self,
        ctx: &mut AppCtx<'_>,
        api: &str,
        client: &mut ClientState,
    ) -> Result<(), OrmError> {
        match api {
            "Register" => {
                let name = format!("sz-u{}-{}", client.client_id, client.iter);
                let id = self.register(
                    ctx,
                    name.as_str().into(),
                    "x@example.com".into(),
                    "pw".into(),
                    "pw".into(),
                )?;
                client.user_id = Some(id);
                Ok(())
            }
            "Add1" => self.add_to_cart(ctx, client.user()?, client.product_a.into(), 1i64.into()),
            "Add2" => self.add_to_cart(ctx, client.user()?, client.product_b.into(), 2i64.into()),
            "Add3" => self.add_to_cart(ctx, client.user()?, client.product_a.into(), 1i64.into()),
            "Ship" => self.ship(ctx, client.user()?, "Paris".into()),
            "Checkout" => self.checkout(ctx, client.user()?),
            other => panic!("unknown Shopizer API {other:?}"),
        }
    }
}

/// Run one unit test under the given execution mode and return its trace
/// plus the term context (the analyzer input), and the API outcome.
///
/// Unit tests are chained: the database carries the state left by earlier
/// tests (the paper runs them sequentially for exactly this reason).
pub fn collect_trace(
    app: &dyn ECommerceApp,
    test: &str,
    db: &Database,
    fixes: &Fixes,
    locks: &AppLocks,
    mode: ExecMode,
    lib_mode: LibraryMode,
) -> (Trace, weseer_smt::Ctx, Result<(), OrmError>) {
    let engine = shared(mode);
    {
        let mut e = engine.borrow_mut();
        e.set_library_mode(lib_mode);
        e.start_concolic();
    }
    let mut ctx = AppCtx::new(db, engine.clone(), fixes, locks);
    let result = app.run_unit_test(&mut ctx, test);
    let trace = ctx.session.driver_mut().take_trace(test);
    drop(ctx);
    let term_ctx = take_ctx(&engine);
    (trace, term_ctx, result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_state_products_differ() {
        let mut c = ClientState::new(3);
        for _ in 0..50 {
            c.next_iteration(10);
            assert_ne!(c.product_a, c.product_b);
            assert!((1..=10).contains(&c.product_a));
            assert!((1..=10).contains(&c.product_b));
        }
    }

    #[test]
    fn broadleaf_unit_tests_chain_and_trace() {
        let app = Broadleaf;
        let db = Database::new(app.catalog());
        app.seed(&db);
        let fixes = Fixes::none();
        let locks = AppLocks::new();
        let mut total_stmts = 0;
        for test in app.unit_tests() {
            let (trace, _ctx, result) = collect_trace(
                &app,
                test,
                &db,
                &fixes,
                &locks,
                ExecMode::Concolic,
                LibraryMode::Modeled,
            );
            result.unwrap_or_else(|e| panic!("unit test {test} failed: {e}"));
            assert!(
                !trace.statements.is_empty(),
                "{test} produced no statements"
            );
            assert!(trace.txns.iter().any(|t| t.committed));
            total_stmts += trace.statements.len();
        }
        assert!(
            total_stmts >= 20,
            "expected a substantial trace, got {total_stmts}"
        );
        // State chained: the full flow left an order behind.
        assert_eq!(db.count("Orders"), 1);
    }

    #[test]
    fn shopizer_unit_tests_chain_and_trace() {
        let app = Shopizer;
        let db = Database::new(app.catalog());
        app.seed(&db);
        let fixes = Fixes::none();
        let locks = AppLocks::new();
        for test in app.unit_tests() {
            let (trace, _ctx, result) = collect_trace(
                &app,
                test,
                &db,
                &fixes,
                &locks,
                ExecMode::Concolic,
                LibraryMode::Modeled,
            );
            result.unwrap_or_else(|e| panic!("unit test {test} failed: {e}"));
            assert!(!trace.statements.is_empty());
        }
        assert_eq!(db.count("Orders"), 1);
    }

    #[test]
    fn traces_capture_symbolic_inputs_and_path_conditions() {
        let app = Broadleaf;
        let db = Database::new(app.catalog());
        app.seed(&db);
        let fixes = Fixes::none();
        let locks = AppLocks::new();
        let (trace, ctx, r) = collect_trace(
            &app,
            "Register",
            &db,
            &fixes,
            &locks,
            ExecMode::Concolic,
            LibraryMode::Modeled,
        );
        r.unwrap();
        // The password confirmation branch became a path condition.
        assert!(!trace.path_conds.is_empty());
        // The INSERT's parameters carry symbolic input expressions.
        let ins = trace
            .statements
            .iter()
            .find(|s| s.stmt.kind() == "INSERT")
            .expect("register inserts");
        assert!(ins.params.iter().any(|p| p.is_symbolic()));
        // The generated customer id is tagged unique.
        assert_eq!(trace.unique_ids.len(), 1);
        assert!(!ctx.is_empty());
    }
}

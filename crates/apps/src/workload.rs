//! The multi-threaded client workload (paper Sec. VII-B "Workload"):
//! every client sequentially issues the Table I APIs, simulating one
//! customer; the harness measures API throughput and the database's abort
//! counters — the inputs to Figs. 10/11.

use crate::app::{ClientState, ECommerceApp};
use crate::ctx::AppCtx;
use crate::fixtures::Fixes;
use crate::locks::AppLocks;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use weseer_concolic::{shared, ExecMode};
use weseer_db::{Database, DbStats};
use weseer_orm::OrmError;

/// Workload parameters.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of concurrent clients (paper: 8 / 64 / 128).
    pub clients: usize,
    /// Measurement duration.
    pub duration: Duration,
    /// Fix configuration under test.
    pub fixes: Fixes,
    /// How many times an API is retried after a deadlock abort.
    pub retries: usize,
    /// Size of the hot product set clients contend on.
    pub hot_products: i64,
    /// Simulated per-statement client↔server latency. Aborted
    /// transactions waste this time, which is what makes deadlock-prone
    /// configurations slow (Sec. II-A).
    pub statement_delay: Duration,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            clients: 8,
            duration: Duration::from_millis(500),
            fixes: Fixes::all(),
            retries: 3,
            hot_products: 8,
            statement_delay: Duration::ZERO,
        }
    }
}

/// Workload outcome.
#[derive(Debug, Clone)]
pub struct WorkloadResult {
    /// Successfully completed API calls.
    pub apis_completed: u64,
    /// API calls that gave up (after retries) or failed.
    pub apis_failed: u64,
    /// Wall-clock measurement time.
    pub elapsed: Duration,
    /// Database counters accumulated during the run.
    pub db_stats: DbStats,
    /// Completed APIs per second.
    pub throughput: f64,
    /// Deadlock aborts per second.
    pub aborts_per_sec: f64,
}

/// Run the workload against a fresh database.
pub fn run_workload<A: ECommerceApp + Copy + Send + 'static>(
    app: A,
    config: &WorkloadConfig,
) -> WorkloadResult {
    let db = Database::with_timeout(app.catalog(), Duration::from_secs(2));
    db.set_statement_delay(config.statement_delay);
    app.seed(&db);
    let locks = AppLocks::new();
    let completed = Arc::new(AtomicU64::new(0));
    let failed = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));

    let start = Instant::now();
    let mut handles = Vec::with_capacity(config.clients);
    for client_id in 0..config.clients {
        let db = db.clone();
        let locks = locks.clone();
        let fixes = config.fixes.clone();
        let completed = completed.clone();
        let failed = failed.clone();
        let stop = stop.clone();
        let retries = config.retries;
        let hot = config.hot_products;
        handles.push(std::thread::spawn(move || {
            let engine = shared(ExecMode::Native);
            let mut state = ClientState::new(client_id);
            // One warm-up registration so every thread starts aligned.
            while !stop.load(Ordering::Relaxed) {
                state.next_iteration(hot);
                // Each API list entry is retried on deadlock victim.
                let apis: Vec<&'static str> = {
                    // Table I order per iteration.
                    app_unit_apis(&app)
                };
                'apis: for api in apis {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let mut attempt = 0;
                    loop {
                        let mut ctx = AppCtx::new(&db, engine.clone(), &fixes, &locks);
                        match app.run_client_api(&mut ctx, api, &mut state) {
                            Ok(()) => {
                                completed.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            Err(e) if e.is_deadlock_victim() && attempt < retries => {
                                attempt += 1;
                                continue;
                            }
                            Err(e) => {
                                failed.fetch_add(1, Ordering::Relaxed);
                                if matches!(e, OrmError::AppAbort(_)) || api == "Register" {
                                    // Without a user the iteration cannot
                                    // continue.
                                    break 'apis;
                                }
                                break;
                            }
                        }
                    }
                }
            }
        }));
    }
    while start.elapsed() < config.duration {
        std::thread::sleep(Duration::from_millis(10));
    }
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().expect("client thread panicked");
    }
    let elapsed = start.elapsed();
    let apis_completed = completed.load(Ordering::Relaxed);
    let apis_failed = failed.load(Ordering::Relaxed);
    let db_stats = db.stats();
    weseer_obs::incr("workload.runs");
    weseer_obs::add("workload.apis_completed", apis_completed);
    weseer_obs::add("workload.apis_failed", apis_failed);
    weseer_obs::add("workload.deadlock_aborts", db_stats.deadlock_aborts);
    weseer_obs::add("workload.timeout_aborts", db_stats.timeout_aborts);
    weseer_obs::add("workload.statements", db_stats.statements);
    weseer_obs::observe_duration("workload.run_us", elapsed);
    WorkloadResult {
        apis_completed,
        apis_failed,
        elapsed,
        db_stats,
        throughput: apis_completed as f64 / elapsed.as_secs_f64(),
        aborts_per_sec: (db_stats.deadlock_aborts + db_stats.timeout_aborts) as f64
            / elapsed.as_secs_f64(),
    }
}

fn app_unit_apis<A: ECommerceApp>(app: &A) -> Vec<&'static str> {
    // The client workflow mirrors the Table I unit-test order.
    app.unit_tests().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broadleaf::Broadleaf;
    use crate::shopizer::Shopizer;

    #[test]
    fn broadleaf_fixed_workload_completes_without_deadlocks() {
        let config = WorkloadConfig {
            clients: 4,
            duration: Duration::from_millis(300),
            fixes: Fixes::all(),
            ..WorkloadConfig::default()
        };
        let r = run_workload(Broadleaf, &config);
        assert!(r.apis_completed > 0, "no APIs completed: {r:?}");
        assert_eq!(
            r.db_stats.deadlock_aborts, 0,
            "fully fixed Broadleaf must not deadlock: {r:?}"
        );
    }

    #[test]
    fn broadleaf_unfixed_workload_suffers_deadlocks() {
        let config = WorkloadConfig {
            clients: 8,
            duration: Duration::from_millis(600),
            fixes: Fixes::none(),
            ..WorkloadConfig::default()
        };
        let r = run_workload(Broadleaf, &config);
        assert!(r.apis_completed > 0);
        assert!(
            r.db_stats.deadlock_aborts > 0,
            "unfixed Broadleaf should abort transactions: {r:?}"
        );
    }

    #[test]
    fn shopizer_fixed_workload_completes_without_deadlocks() {
        let config = WorkloadConfig {
            clients: 4,
            duration: Duration::from_millis(300),
            fixes: Fixes::all(),
            hot_products: 6,
            ..WorkloadConfig::default()
        };
        let r = run_workload(Shopizer, &config);
        assert!(r.apis_completed > 0, "no APIs completed: {r:?}");
        assert_eq!(
            r.db_stats.deadlock_aborts, 0,
            "fully fixed Shopizer must not deadlock: {r:?}"
        );
    }

    #[test]
    fn shopizer_unfixed_workload_suffers_deadlocks() {
        let config = WorkloadConfig {
            clients: 8,
            duration: Duration::from_millis(600),
            fixes: Fixes::none(),
            hot_products: 4,
            ..WorkloadConfig::default()
        };
        let r = run_workload(Shopizer, &config);
        assert!(r.apis_completed > 0);
        assert!(
            r.db_stats.deadlock_aborts > 0,
            "unfixed Shopizer should abort transactions: {r:?}"
        );
    }
}

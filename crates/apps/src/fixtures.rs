//! Fix toggles f1–f11 (paper Table II).
//!
//! Each fix is an application-side change that removes one or more of the
//! 18 deadlocks. The performance evaluation (Figs. 10/11) runs the apps
//! with all fixes enabled, all disabled, and each fix disabled in turn.

use std::fmt;

/// The application-level fixes of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Fix {
    /// Use the correct ORM operation (`persist`, not `merge`) — d1.
    F1,
    /// Use MySQL's UPSERT mechanism for check-then-write logic — d2.
    F2,
    /// Separate the item-attribute SELECT from the transaction — d3, d4.
    F3,
    /// Move the ORM flush forward (fulfillment items) — d5, d6.
    F4,
    /// Separate the cart-pricing SELECT from the transaction — d7, d8, d9.
    F5,
    /// Reorder SQL statements (insert address before scanning) — d10.
    F6,
    /// Separate the offer/pricing SELECT from the transaction — d11.
    F7,
    /// Separate the tax SELECT from the transaction — d12, d13.
    F8,
    /// Force serial execution of product pricing/commit with app-level
    /// locks — d14, d15, d16.
    F9,
    /// Update products in a canonical (sorted) order — d17.
    F10,
    /// Read the cart's products in the same canonical order — d18.
    F11,
}

impl Fix {
    /// All fixes, in order.
    pub const ALL: [Fix; 11] = [
        Fix::F1,
        Fix::F2,
        Fix::F3,
        Fix::F4,
        Fix::F5,
        Fix::F6,
        Fix::F7,
        Fix::F8,
        Fix::F9,
        Fix::F10,
        Fix::F11,
    ];

    /// Fixes applying to Broadleaf (f1–f8).
    pub const BROADLEAF: [Fix; 8] = [
        Fix::F1,
        Fix::F2,
        Fix::F3,
        Fix::F4,
        Fix::F5,
        Fix::F6,
        Fix::F7,
        Fix::F8,
    ];

    /// Fixes applying to Shopizer (f9–f11).
    pub const SHOPIZER: [Fix; 3] = [Fix::F9, Fix::F10, Fix::F11];

    /// Table II's description of the fixing approach.
    pub fn description(&self) -> &'static str {
        match self {
            Fix::F1 => "Use correct ORM operation",
            Fix::F2 => "Use MySQL UPSERT mechanism",
            Fix::F3 => "Separate SELECT from original transaction",
            Fix::F4 => "Move forward ORM flush",
            Fix::F5 => "Separate SELECT from original transaction",
            Fix::F6 => "Reorder SQL statements",
            Fix::F7 => "Separate SELECT from original transaction",
            Fix::F8 => "Separate SELECT from original transaction",
            Fix::F9 => "Force serial execution with app-level locks",
            Fix::F10 => "Ensure the same locking order",
            Fix::F11 => "Ensure the same locking order",
        }
    }

    /// Short label (`f1`, …).
    pub fn label(&self) -> String {
        format!("f{}", (*self as usize) + 1)
    }
}

impl fmt::Display for Fix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// An enabled-fix set.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Fixes {
    enabled: u16,
}

impl Fixes {
    /// No fixes (the shipped, deadlock-prone applications).
    pub fn none() -> Fixes {
        Fixes::default()
    }

    /// Every fix.
    pub fn all() -> Fixes {
        let mut f = Fixes::default();
        for fix in Fix::ALL {
            f.enable(fix);
        }
        f
    }

    /// Every fix except one (the Fig. 10/11 "disable fk" configurations).
    pub fn all_but(fix: Fix) -> Fixes {
        let mut f = Fixes::all();
        f.disable(fix);
        f
    }

    /// Enable one fix.
    pub fn enable(&mut self, fix: Fix) {
        self.enabled |= 1 << (fix as u16);
    }

    /// Disable one fix.
    pub fn disable(&mut self, fix: Fix) {
        self.enabled &= !(1 << (fix as u16));
    }

    /// Whether a fix is on.
    pub fn on(&self, fix: Fix) -> bool {
        self.enabled & (1 << (fix as u16)) != 0
    }

    /// Enabled fixes in order.
    pub fn list(&self) -> Vec<Fix> {
        Fix::ALL.into_iter().filter(|f| self.on(*f)).collect()
    }
}

impl fmt::Display for Fixes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let list = self.list();
        if list.is_empty() {
            return write!(f, "none");
        }
        if list.len() == Fix::ALL.len() {
            return write!(f, "all");
        }
        let labels: Vec<String> = list.iter().map(|x| x.label()).collect();
        write!(f, "{}", labels.join("+"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toggling() {
        let mut f = Fixes::none();
        assert!(!f.on(Fix::F2));
        f.enable(Fix::F2);
        assert!(f.on(Fix::F2));
        f.disable(Fix::F2);
        assert!(!f.on(Fix::F2));
    }

    #[test]
    fn all_and_all_but() {
        let f = Fixes::all();
        assert!(Fix::ALL.iter().all(|x| f.on(*x)));
        let f = Fixes::all_but(Fix::F5);
        assert!(!f.on(Fix::F5));
        assert!(f.on(Fix::F4));
        assert_eq!(f.list().len(), 10);
    }

    #[test]
    fn labels_match_table_ii() {
        assert_eq!(Fix::F1.label(), "f1");
        assert_eq!(Fix::F11.label(), "f11");
        assert_eq!(
            Fix::F9.description(),
            "Force serial execution with app-level locks"
        );
        assert_eq!(Fixes::all().to_string(), "all");
        assert_eq!(Fixes::none().to_string(), "none");
        let mut f = Fixes::none();
        f.enable(Fix::F1);
        f.enable(Fix::F3);
        assert_eq!(f.to_string(), "f1+f3");
    }
}

//! Mapping raw analyzer reports onto Table II's 18 deadlocks.
//!
//! The analyzer emits one report per confirmed SC-graph cycle; the paper's
//! authors manually grouped those into 18 deadlocks. This module encodes
//! that grouping for the simulated applications: each report is classified
//! by its conflict tables, the APIs involved, and (for Shopizer's Product
//! deadlocks) the triggering code sites and hold/wait statement kinds.

use crate::fixtures::Fix;
use std::fmt;
use weseer_analyzer::DeadlockReport;

/// A Table II row (or a known false-positive class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum KnownDeadlock {
    /// d1 — Register/Register on `Customer` (merge-style registration).
    D1,
    /// d2 — cart check-then-insert (app-lock protected in production).
    D2,
    /// d3, d4 — order-item check-then-insert/update.
    D3_4,
    /// d5, d6 — fulfillment items reordered by write-behind.
    D5_6,
    /// d7, d8 — Add-side cart pricing.
    D7_8,
    /// d9 — Add-vs-Ship cart pricing.
    D9,
    /// d10 — address scan-then-insert.
    D10,
    /// d11 — Ship-side cart pricing.
    D11,
    /// d12, d13 — tax check-then-insert.
    D12_13,
    /// d14 — pricing vs pricing read-modify-write on `Product`.
    D14,
    /// d15 — pricing vs commit on `Product`.
    D15,
    /// d16 — commit vs commit on `Product`.
    D16,
    /// d17 — product updates in inconsistent order.
    D17,
    /// d18 — commit updates vs product reads in another order.
    D18,
    /// Reported cycle on logic protected by application-level
    /// synchronization (the paper's false-positive class, Sec. V-D).
    FpAppLocked,
    /// A cycle not anticipated by the Table II inventory.
    Unexpected,
}

impl KnownDeadlock {
    /// The Table II rows, in order.
    pub const TABLE2: [KnownDeadlock; 14] = [
        KnownDeadlock::D1,
        KnownDeadlock::D2,
        KnownDeadlock::D3_4,
        KnownDeadlock::D5_6,
        KnownDeadlock::D7_8,
        KnownDeadlock::D9,
        KnownDeadlock::D10,
        KnownDeadlock::D11,
        KnownDeadlock::D12_13,
        KnownDeadlock::D14,
        KnownDeadlock::D15,
        KnownDeadlock::D16,
        KnownDeadlock::D17,
        KnownDeadlock::D18,
    ];

    /// Table II deadlock ids covered by this row ("d3, d4").
    pub fn ids(&self) -> &'static str {
        match self {
            KnownDeadlock::D1 => "d1",
            KnownDeadlock::D2 => "d2",
            KnownDeadlock::D3_4 => "d3, d4",
            KnownDeadlock::D5_6 => "d5, d6",
            KnownDeadlock::D7_8 => "d7, d8",
            KnownDeadlock::D9 => "d9",
            KnownDeadlock::D10 => "d10",
            KnownDeadlock::D11 => "d11",
            KnownDeadlock::D12_13 => "d12, d13",
            KnownDeadlock::D14 => "d14",
            KnownDeadlock::D15 => "d15",
            KnownDeadlock::D16 => "d16",
            KnownDeadlock::D17 => "d17",
            KnownDeadlock::D18 => "d18",
            KnownDeadlock::FpAppLocked => "(fp)",
            KnownDeadlock::Unexpected => "(?)",
        }
    }

    /// Number of paper deadlock ids in this row.
    pub fn id_count(&self) -> usize {
        match self {
            KnownDeadlock::D3_4
            | KnownDeadlock::D5_6
            | KnownDeadlock::D7_8
            | KnownDeadlock::D12_13 => 2,
            KnownDeadlock::FpAppLocked | KnownDeadlock::Unexpected => 0,
            _ => 1,
        }
    }

    /// The application owning the row.
    pub fn app(&self) -> &'static str {
        match self {
            KnownDeadlock::D14
            | KnownDeadlock::D15
            | KnownDeadlock::D16
            | KnownDeadlock::D17
            | KnownDeadlock::D18 => "shopizer",
            KnownDeadlock::FpAppLocked | KnownDeadlock::Unexpected => "-",
            _ => "broadleaf",
        }
    }

    /// The fixing approach (Table II).
    pub fn fix(&self) -> Option<Fix> {
        Some(match self {
            KnownDeadlock::D1 => Fix::F1,
            KnownDeadlock::D2 => Fix::F2,
            KnownDeadlock::D3_4 => Fix::F3,
            KnownDeadlock::D5_6 => Fix::F4,
            KnownDeadlock::D7_8 | KnownDeadlock::D9 => Fix::F5,
            KnownDeadlock::D10 => Fix::F6,
            KnownDeadlock::D11 => Fix::F7,
            KnownDeadlock::D12_13 => Fix::F8,
            KnownDeadlock::D14 | KnownDeadlock::D15 | KnownDeadlock::D16 => Fix::F9,
            KnownDeadlock::D17 => Fix::F10,
            KnownDeadlock::D18 => Fix::F11,
            _ => return None,
        })
    }

    /// Table II's transaction description.
    pub fn description(&self) -> &'static str {
        match self {
            KnownDeadlock::D1 => "Create a new user",
            KnownDeadlock::D2 => "App-level locks protecting cart",
            KnownDeadlock::D3_4 => "Create a new order item",
            KnownDeadlock::D5_6 => "Create order and fulfillment items",
            KnownDeadlock::D7_8 | KnownDeadlock::D9 | KnownDeadlock::D11 => {
                "Calculate shopping cart's price"
            }
            KnownDeadlock::D10 => "Create address information",
            KnownDeadlock::D12_13 => "Calculate shopping cart's price",
            KnownDeadlock::D14 => "Price the order's products",
            KnownDeadlock::D15 => "Price/Commit the order's products",
            KnownDeadlock::D16 => "Commit the order's products",
            KnownDeadlock::D17 => "Commit/Price the order's products",
            KnownDeadlock::D18 => "Commit/Read the cart's products",
            KnownDeadlock::FpAppLocked => "App-level synchronization prevents this at runtime",
            KnownDeadlock::Unexpected => "Not in the Table II inventory",
        }
    }
}

impl fmt::Display for KnownDeadlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.ids())
    }
}

fn is_add(api: &str) -> bool {
    api.starts_with("Add")
}

/// Classify one report from the given application.
pub fn classify(app: &str, report: &DeadlockReport) -> KnownDeadlock {
    let tables = report.tables();
    let has = |t: &str| tables.iter().any(|x| x == t);
    let a = report.cycle.a_api.as_str();
    let b = report.cycle.b_api.as_str();
    match app {
        "broadleaf" => {
            if has("Customer") && a == "Register" && b == "Register" {
                return KnownDeadlock::D1;
            }
            // Pricing cycles take precedence: mixed pricing/cart cycles are
            // instances of the pricing pattern (f5/f7 remove them by
            // separating the pricing reads).
            if has("PriceDetail") || has("Offer") {
                return match (is_add(a), is_add(b), a, b) {
                    (true, true, _, _) => KnownDeadlock::D7_8,
                    (true, _, _, "Ship") | (_, true, "Ship", _) => KnownDeadlock::D9,
                    (_, _, "Ship", "Ship") => KnownDeadlock::D11,
                    _ => KnownDeadlock::Unexpected,
                };
            }
            if has("Cart") || has("CartItem") {
                if a == "Checkout" || b == "Checkout" {
                    return KnownDeadlock::FpAppLocked;
                }
                if has("Cart") && is_add(a) && is_add(b) {
                    return KnownDeadlock::D2;
                }
                if has("CartItem") && is_add(a) && is_add(b) {
                    return KnownDeadlock::D3_4;
                }
                return KnownDeadlock::Unexpected;
            }
            if has("FulfillmentItem") {
                return KnownDeadlock::D5_6;
            }
            if has("Address") && a == "Ship" && b == "Ship" {
                return KnownDeadlock::D10;
            }
            if has("TaxDetail") && a == "Ship" && b == "Ship" {
                return KnownDeadlock::D12_13;
            }
            KnownDeadlock::Unexpected
        }
        "shopizer" => {
            if !has("Product") {
                // Cart/address/order logic: session-affine in production.
                return KnownDeadlock::FpAppLocked;
            }
            // statements: [a_hold, a_wait, b_hold, b_wait]
            let kind = |i: usize| -> char {
                let sql = &report.statements[i].sql;
                if sql.starts_with("UPDATE")
                    || sql.starts_with("INSERT")
                    || sql.starts_with("DELETE")
                {
                    'W'
                } else {
                    'R'
                }
            };
            let trig = |i: usize| -> &str {
                report.statements[i]
                    .trigger
                    .top()
                    .map(|l| l.function)
                    .unwrap_or("")
            };
            let (ah, aw, bh, bw) = (kind(0), kind(1), kind(2), kind(3));
            // One side only reads: commit updates vs cart-product reads.
            if (ah == 'R' && aw == 'R') || (bh == 'R' && bw == 'R') {
                return KnownDeadlock::D18;
            }
            // Both sides hold an update: ordering deadlock.
            if ah == 'W' && bh == 'W' {
                return KnownDeadlock::D17;
            }
            // Read-modify-write cycles: split by the waiting statements'
            // triggering sites.
            let a_commit = trig(1).contains("commitOrder");
            let b_commit = trig(3).contains("commitOrder");
            match (a_commit, b_commit) {
                (false, false) => KnownDeadlock::D14,
                (true, true) => KnownDeadlock::D16,
                _ => KnownDeadlock::D15,
            }
        }
        _ => KnownDeadlock::Unexpected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_metadata_consistent() {
        // 14 rows covering the 18 paper deadlocks.
        let total: usize = KnownDeadlock::TABLE2.iter().map(|k| k.id_count()).sum();
        assert_eq!(total, 18);
        for k in KnownDeadlock::TABLE2 {
            assert!(k.fix().is_some(), "{k} must map to a fix");
            assert!(!k.description().is_empty());
            assert_ne!(k.app(), "-");
        }
        assert!(KnownDeadlock::FpAppLocked.fix().is_none());
    }

    #[test]
    fn broadleaf_rows_use_broadleaf_fixes() {
        for k in KnownDeadlock::TABLE2 {
            let fix = k.fix().unwrap();
            if k.app() == "broadleaf" {
                assert!(Fix::BROADLEAF.contains(&fix), "{k} → {fix}");
            } else {
                assert!(Fix::SHOPIZER.contains(&fix), "{k} → {fix}");
            }
        }
    }
}

//! Quickstart: the paper's Fig. 1 `finishOrder` example, end to end.
//!
//! Builds the three-table schema, runs the ORM-based transaction under
//! concolic execution, diagnoses the Fig. 4 deadlock cycle, and prints
//! the report — including the triggering code and a witness assignment.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use weseer::analyzer::{diagnose, AnalyzerConfig, CollectedTrace};
use weseer::concolic::{loc, shared, take_ctx, ExecMode, SymValue};
use weseer::db::Database;
use weseer::orm::{LazyCollection, OrmSession};
use weseer::sqlir::{parser::parse, Catalog, CmpOp, ColType, TableBuilder, Value};

fn catalog() -> Catalog {
    Catalog::new(vec![
        TableBuilder::new("Order")
            .col("ID", ColType::Int)
            .primary_key(&["ID"])
            .build()
            .unwrap(),
        TableBuilder::new("Product")
            .col("ID", ColType::Int)
            .col("QTY", ColType::Int)
            .primary_key(&["ID"])
            .build()
            .unwrap(),
        TableBuilder::new("OrderItem")
            .col("ID", ColType::Int)
            .col("O_ID", ColType::Int)
            .col("P_ID", ColType::Int)
            .col("QTY", ColType::Int)
            .primary_key(&["ID"])
            .foreign_key("O_ID", "Order", "ID")
            .foreign_key("P_ID", "Product", "ID")
            .build()
            .unwrap(),
    ])
    .unwrap()
}

/// Fig. 1's `finishOrder`, written against the ORM + concolic runtime.
fn finish_order(
    session: &mut OrmSession<weseer::db::Session>,
    order_id: SymValue,
) -> Result<(), weseer::orm::OrmError> {
    let engine = session.engine().clone();
    session.begin();

    // Line 5: o is read from the read cache (no SQL once cached).
    let _order = session.find("Order", &order_id, loc!("finishOrder"))?;

    // Line 7: the order's items load lazily — Q4 with two JOINs fires at
    // first use.
    let q4 = parse(
        "SELECT * FROM OrderItem oi \
         JOIN Order o ON o.ID = oi.O_ID \
         JOIN Product p ON p.ID = oi.P_ID \
         WHERE oi.O_ID = ?",
    )
    .unwrap();
    let mut items = LazyCollection::new(q4, vec![order_id]);
    let rows = items.get_or_load(session, loc!("finishOrder"))?.to_vec();

    for row in &rows {
        // updateQuantity (lines 13–21): check and decrease the quantity.
        let oi = &row["oi"];
        let p = &row["p"];
        let p_qty = p.get("QTY");
        let oi_qty = oi.get("QTY");
        let enough = {
            let mut e = engine.borrow_mut();
            let c = e.cmp(CmpOp::Ge, &p_qty, &oi_qty);
            e.branch(&c, loc!("updateQuantity"))
        };
        if !enough {
            session.rollback();
            return Err(weseer::orm::OrmError::AppAbort("No enough products".into()));
        }
        // Line 19: buffered by the write-behind cache; Q6 is sent at
        // commit (line 11) but *triggered* here.
        let new_qty = engine.borrow_mut().sub(&p_qty, &oi_qty);
        p.set(&engine, "QTY", new_qty, loc!("updateQuantity"));
    }
    session.commit(loc!("finishOrder"))
}

fn main() {
    // 1. Database with the Fig. 1 schema and initial state.
    let db = Database::new(catalog());
    db.seed("Order", vec![vec![Value::Int(1)]]);
    db.seed("Product", vec![vec![Value::Int(10), Value::Int(100)]]);
    db.seed(
        "OrderItem",
        vec![vec![
            Value::Int(100),
            Value::Int(1),
            Value::Int(10),
            Value::Int(3),
        ]],
    );

    // 2. Run the unit test under concolic execution (the API input is
    //    symbolic — Sec. III-A's make_symbolic).
    let engine = shared(ExecMode::Concolic);
    engine.borrow_mut().start_concolic();
    let mut session = OrmSession::new(engine.clone(), db.session(), db.catalog().clone());
    let order_id = engine.borrow_mut().make_symbolic("order_id", Value::Int(1));
    finish_order(&mut session, order_id).expect("unit test run");
    let trace = session.driver_mut().take_trace("finishOrder");
    drop(session);

    println!("== collected trace (Fig. 3) ==\n{trace}");

    // 3. Diagnose: two concurrent instances of the same API.
    let collected = CollectedTrace::new(trace, take_ctx(&engine));
    let diagnosis = diagnose(db.catalog(), &[collected], &AnalyzerConfig::default());

    println!("== diagnosis ==");
    println!(
        "txn pairs {} → after phase 1: {} → coarse cycles: {} → SMT SAT: {}",
        diagnosis.stats.txn_pairs,
        diagnosis.stats.pairs_after_phase1,
        diagnosis.stats.coarse_cycles,
        diagnosis.stats.smt_sat,
    );
    for report in &diagnosis.deadlocks {
        println!("\n{report}");
    }
    assert!(
        !diagnosis.deadlocks.is_empty(),
        "the Fig. 4 deadlock cycle must be confirmed"
    );
    println!("\nThe Fig. 4 cycle [ins1.Q4 -> ins1.Q6 -> ins2.Q4 -> ins2.Q6] is confirmed.");
}

//! The classic lost update, end to end through the MVCC plane: an ORM
//! withdrawal transaction is traced concolically, the static anomaly
//! oracle flags the read-modify-write self-pair, and the interleaving
//! explorer confirms it with a concrete schedule at READ COMMITTED —
//! where the second withdrawal overwrites a balance it never saw — then
//! comes back clean under the default serializable 2PL.
//!
//! ```sh
//! cargo run --release --example anomaly_lost_update
//! ```

use weseer::analyzer::{find_anomaly_candidates, CollectedTrace};
use weseer::concolic::{loc, shared, take_ctx, ExecMode, SymValue};
use weseer::db::{Database, IsolationLevel};
use weseer::orm::OrmSession;
use weseer::replay::{concretize_txn, explore_anomalies, AnomalyOutcome, Instance, ReplayConfig};
use weseer::sqlir::{Catalog, ColType, TableBuilder, Value};

fn catalog() -> Catalog {
    Catalog::new(vec![TableBuilder::new("Account")
        .col("ID", ColType::Int)
        .col("BAL", ColType::Int)
        .primary_key(&["ID"])
        .build()
        .unwrap()])
    .unwrap()
}

fn seeded_db() -> Database {
    let db = Database::new(catalog());
    db.seed("Account", vec![vec![Value::Int(1), Value::Int(100)]]);
    db
}

/// Read-modify-write withdrawal: load the account, subtract, store. Two
/// concurrent runs at a weak level can both read 100 and the later
/// commit silently swallows the earlier one.
fn withdraw(
    session: &mut OrmSession<weseer::db::Session>,
    id: SymValue,
    amount: SymValue,
) -> Result<(), weseer::orm::OrmError> {
    let engine = session.engine().clone();
    session.begin();
    let acc = session
        .find("Account", &id, loc!("withdraw::load"))?
        .ok_or_else(|| weseer::orm::OrmError::AppAbort("unknown account".into()))?;
    let bal = acc.get("BAL");
    let nb = engine.borrow_mut().sub(&bal, &amount);
    acc.set(&engine, "BAL", nb, loc!("withdraw::store"));
    session.commit(loc!("withdraw"))
}

/// Trace one concolic run of the withdrawal API.
fn collect_trace() -> (Database, CollectedTrace) {
    let db = seeded_db();
    let engine = shared(ExecMode::Concolic);
    engine.borrow_mut().start_concolic();
    let mut session = OrmSession::new(engine.clone(), db.session(), db.catalog().clone());
    let id = engine.borrow_mut().make_symbolic("id", Value::Int(1));
    let amount = engine.borrow_mut().make_symbolic("amount", Value::Int(10));
    withdraw(&mut session, id, amount).expect("withdraw runs");
    let trace = session.driver_mut().take_trace("Withdraw");
    drop(session);
    (db, CollectedTrace::new(trace, take_ctx(&engine)))
}

fn main() {
    let (_db, trace) = collect_trace();

    // Static oracle: the SELECT-then-UPDATE on Account is a
    // read-modify-write, so two concurrent Withdraws are a lost-update
    // candidate (a self-pair — one API raced against itself).
    let candidates = find_anomaly_candidates(std::slice::from_ref(&trace));
    println!("== static anomaly oracle ==");
    for c in &candidates {
        println!(
            "  {} on {}: {} vs {} at [{}]",
            c.kind,
            c.table,
            c.a_api,
            c.b_api,
            c.levels.join(", ")
        );
    }
    let lost = candidates
        .iter()
        .find(|c| c.kind == "lost-update")
        .expect("the RMW self-pair must be flagged");
    assert_eq!(lost.table, "Account");

    // Dynamic confirmation: concretize the traced transaction twice (the
    // model is empty — traced inputs stand) and explore interleavings.
    let empty = weseer::smt::Model::default();
    let stmts = concretize_txn(&trace, lost.a_txn, &empty);
    assert!(!stmts.is_empty(), "traced txn concretizes");
    let instances = vec![
        Instance {
            name: "A1".into(),
            stmts: stmts.clone(),
        },
        Instance {
            name: "A2".into(),
            stmts,
        },
    ];
    let apis = vec!["Withdraw".to_string(), "Withdraw".to_string()];

    println!("\n== read-committed: the update is lost ==");
    let base = seeded_db();
    let out = explore_anomalies(
        &base,
        &instances,
        &apis,
        IsolationLevel::ReadCommitted,
        &ReplayConfig::default(),
    );
    let witness = match out {
        AnomalyOutcome::Anomalous(w) => w,
        AnomalyOutcome::Clean { .. } => panic!("read committed must lose the update"),
    };
    assert!(witness.anomalies.iter().any(|a| a.kind == "lost-update"));
    print!("{}", witness.render());
    println!("canonical witness JSON:\n{}", witness.to_json());

    println!("\n== serializable (default): 2PL forbids it ==");
    let out = explore_anomalies(
        &base,
        &instances,
        &apis,
        IsolationLevel::Serializable,
        &ReplayConfig::default(),
    );
    match out {
        AnomalyOutcome::Clean { explored, pruned } => {
            println!("clean: {explored} schedules explored, {pruned} pruned");
        }
        AnomalyOutcome::Anomalous(w) => panic!("serializable must be clean: {}", w.render()),
    }
}

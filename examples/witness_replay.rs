//! Replay diagnosed Shopizer deadlocks for concrete witnesses.
//!
//! The analyzer's SAT verdicts are static claims; the replay engine checks
//! them dynamically by exploring statement-level interleavings of the two
//! transactions (with the SAT model's concrete inputs) against a fresh
//! fork of the storage engine, until the lock manager reports a real
//! wait-for cycle.
//!
//! ```sh
//! cargo run --release --example witness_replay
//! ```

use weseer::apps::{witnessed_report, Shopizer};
use weseer::core::Weseer;

fn main() {
    let analysis = Weseer::new().with_replay().analyze(&Shopizer);
    let summary = analysis.replay.as_ref().expect("replay was requested");
    println!(
        "{} reports: {} replay-confirmed, {} not reproduced, {} skipped\n",
        analysis.diagnosis.deadlocks.len(),
        summary.confirmed(),
        summary.not_reproduced(),
        summary.skipped()
    );

    // Print the full developer report (classification, code locations,
    // witness schedule) for the first confirmed deadlock.
    for (report, verdict) in analysis.diagnosis.deadlocks.iter().zip(&summary.verdicts) {
        if verdict.is_confirmed() {
            println!("{}", witnessed_report(&analysis.app, report, verdict));
            break;
        }
    }
}

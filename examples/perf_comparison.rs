//! A scaled-down Fig. 10/11 run: measure throughput and deadlock aborts of
//! both applications with fixes on vs. off.
//!
//! ```sh
//! cargo run --release --example perf_comparison
//! ```

use std::time::Duration;
use weseer::apps::workload::{run_workload, WorkloadConfig, WorkloadResult};
use weseer::apps::{Broadleaf, Fixes, Shopizer};

fn config(clients: usize, fixes: Fixes) -> WorkloadConfig {
    WorkloadConfig {
        clients,
        duration: Duration::from_millis(800),
        fixes,
        retries: 3,
        hot_products: 8,
        statement_delay: Duration::ZERO,
    }
}

fn show(app: &str, label: &str, r: &WorkloadResult) {
    println!(
        "  {app:<9} {label:<12} {:>8.0} API/s  {:>8.0} aborts/s  ({} commits, {} rollbacks)",
        r.throughput, r.aborts_per_sec, r.db_stats.commits, r.db_stats.rollbacks,
    );
}

fn main() {
    for clients in [8usize, 32] {
        println!("== {clients} clients ==");
        for (label, fixes) in [("enable all", Fixes::all()), ("disable all", Fixes::none())] {
            let r = run_workload(Broadleaf, &config(clients, fixes));
            show("broadleaf", label, &r);
        }
        for (label, fixes) in [("enable all", Fixes::all()), ("disable all", Fixes::none())] {
            let r = run_workload(Shopizer, &config(clients, fixes));
            show("shopizer", label, &r);
        }
        println!();
    }
    println!("paper headline: fixing all deadlocks yields up to 39.5x (Broadleaf) and");
    println!("4.5x (Shopizer) throughput at 128 clients, with aborts dropping 904 -> 0.");
}

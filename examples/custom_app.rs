//! Using WeSEER's layers on *your own* application: define a schema,
//! write a transaction against the ORM, and diagnose it — no Broadleaf or
//! Shopizer involved.
//!
//! The example builds a tiny banking app whose `transfer` moves money
//! between two accounts read-modify-write style; two concurrent transfers
//! in opposite directions deadlock. A second, sorted variant is analyzed
//! and the opposite-direction cycle is refuted through path conditions.
//!
//! ```sh
//! cargo run --release --example custom_app
//! ```

use weseer::analyzer::{diagnose, AnalyzerConfig, CollectedTrace};
use weseer::concolic::{loc, shared, take_ctx, ExecMode, SymValue};
use weseer::db::Database;
use weseer::orm::OrmSession;
use weseer::sqlir::{Catalog, CmpOp, ColType, TableBuilder, Value};

fn catalog() -> Catalog {
    Catalog::new(vec![TableBuilder::new("Account")
        .col("ID", ColType::Int)
        .col("OWNER", ColType::Str)
        .col("BALANCE", ColType::Int)
        .primary_key(&["ID"])
        .build()
        .unwrap()])
    .unwrap()
}

/// Transfer `amount` from `src` to `dst` — reading then updating both
/// account rows (a textbook opposite-order deadlock).
fn transfer(
    session: &mut OrmSession<weseer::db::Session>,
    src: SymValue,
    dst: SymValue,
    amount: SymValue,
    sorted: bool,
) -> Result<(), weseer::orm::OrmError> {
    let engine = session.engine().clone();
    session.begin();
    let mut pair = vec![src, dst];
    if sorted {
        // Canonical lock order, with the comparison recorded as a path
        // condition so the analyzer can *prove* the fix.
        let swap = {
            let mut e = engine.borrow_mut();
            let c = e.cmp(CmpOp::Gt, &pair[0], &pair[1]);
            e.branch(&c, loc!("transfer::sort"))
        };
        if swap {
            pair.swap(0, 1);
        }
    }
    let mut accounts = Vec::new();
    for id in &pair {
        let acc = session
            .find("Account", id, loc!("transfer::load"))?
            .ok_or_else(|| weseer::orm::OrmError::AppAbort("unknown account".into()))?;
        accounts.push(acc);
    }
    // Apply the debit/credit (order within the buffered flush follows the
    // load order).
    let debit = &accounts[0];
    let credit = &accounts[1];
    let b0 = debit.get("BALANCE");
    let b1 = credit.get("BALANCE");
    let nb0 = engine.borrow_mut().sub(&b0, &amount);
    let nb1 = engine.borrow_mut().add(&b1, &amount);
    debit.set(&engine, "BALANCE", nb0, loc!("transfer::debit"));
    credit.set(&engine, "BALANCE", nb1, loc!("transfer::credit"));
    session.commit(loc!("transfer"))
}

fn analyze(sorted: bool) -> usize {
    let db = Database::new(catalog());
    db.seed(
        "Account",
        vec![
            vec![Value::Int(1), Value::str("alice"), Value::Int(100)],
            vec![Value::Int(2), Value::str("bob"), Value::Int(100)],
        ],
    );
    let engine = shared(ExecMode::Concolic);
    engine.borrow_mut().start_concolic();
    let mut session = OrmSession::new(engine.clone(), db.session(), db.catalog().clone());
    let src = engine.borrow_mut().make_symbolic("src", Value::Int(1));
    let dst = engine.borrow_mut().make_symbolic("dst", Value::Int(2));
    let amount = engine.borrow_mut().make_symbolic("amount", Value::Int(10));
    transfer(&mut session, src, dst, amount, sorted).expect("transfer runs");
    let trace = session.driver_mut().take_trace("Transfer");
    drop(session);
    let collected = CollectedTrace::new(trace, take_ctx(&engine));
    let d = diagnose(db.catalog(), &[collected], &AnalyzerConfig::default());
    println!(
        "  sorted={sorted}: {} coarse cycles, {} confirmed deadlocks, {} refuted",
        d.stats.coarse_cycles,
        d.deadlocks.len(),
        d.stats.smt_unsat
    );
    for r in &d.deadlocks {
        println!("{r}");
    }
    d.deadlocks.len()
}

fn main() {
    println!("== unsorted transfer (deadlock-prone) ==");
    let unsorted = analyze(false);
    println!("\n== sorted transfer (fix proven by path conditions) ==");
    let sorted = analyze(true);
    assert!(unsorted > 0, "opposite-direction transfers must deadlock");
    assert!(
        sorted < unsorted,
        "sorting must eliminate cycles ({unsorted} -> {sorted})"
    );
}

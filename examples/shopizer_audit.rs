//! Audit the simulated Shopizer application, then re-audit the *fixed*
//! variant to show the analyzer proving the ordering fixes (f10/f11)
//! correct through recorded sort comparisons.
//!
//! ```sh
//! cargo run --release --example shopizer_audit
//! ```

use weseer::apps::{classify, Fix, Fixes, KnownDeadlock, Shopizer};
use weseer::core::Weseer;

fn main() {
    let weseer = Weseer::new();

    println!("== unfixed Shopizer ==");
    let unfixed = weseer.analyze(&Shopizer);
    for row in KnownDeadlock::TABLE2 {
        if row.app() != "shopizer" {
            continue;
        }
        let n = unfixed.groups.get(&row).copied().unwrap_or(0);
        println!(
            "  {:<5} {:<38} fix {:<3} — {}",
            row.ids(),
            row.description(),
            row.fix().map(|f| f.label()).unwrap_or_default(),
            if n > 0 {
                format!("FOUND ({n} cycles)")
            } else {
                "missing".into()
            }
        );
    }
    println!(
        "  stats: {} coarse cycles, {} SAT, {} UNSAT",
        unfixed.diagnosis.stats.coarse_cycles,
        unfixed.diagnosis.stats.smt_sat,
        unfixed.diagnosis.stats.smt_unsat
    );

    println!("\n== with f10+f11 (sorted product access) ==");
    let mut fixes = Fixes::none();
    fixes.enable(Fix::F10);
    fixes.enable(Fix::F11);
    let fixed = weseer.analyze_with_fixes(&Shopizer, &fixes);
    let d17 = fixed
        .diagnosis
        .deadlocks
        .iter()
        .filter(|r| classify("shopizer", r) == KnownDeadlock::D17)
        .count();
    let d18 = fixed
        .diagnosis
        .deadlocks
        .iter()
        .filter(|r| classify("shopizer", r) == KnownDeadlock::D18)
        .count();
    println!("  d17 update-order cycles: {d17} (the sort's path conditions refute them)");
    println!(
        "  d18 read-order cycles  : {d18} (residuals go through Add's unsorted \
         validation read — only f9's app locks cover those)"
    );
    println!(
        "  stats: {} SAT, {} UNSAT (refutations grew from {})",
        fixed.diagnosis.stats.smt_sat,
        fixed.diagnosis.stats.smt_unsat,
        unfixed.diagnosis.stats.smt_unsat
    );

    assert_eq!(d17, 0, "sorted updates must be proven safe");
}

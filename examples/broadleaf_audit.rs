//! Audit the simulated Broadleaf application: run WeSEER's full pipeline
//! over the Table I unit tests and print Table II-style findings.
//!
//! ```sh
//! cargo run --release --example broadleaf_audit
//! ```

use weseer::apps::{Broadleaf, KnownDeadlock};
use weseer::core::Weseer;

fn main() {
    let weseer = Weseer::new();
    println!("collecting Broadleaf traces (7 chained unit tests)…");
    let analysis = weseer.analyze(&Broadleaf);

    println!("\n== traces ==");
    for t in &analysis.trace_summaries {
        println!(
            "  {:<9} {:>2} txns  {:>3} statements  {:>3} path conditions",
            t.api, t.txns, t.statements, t.path_conds
        );
    }

    let s = &analysis.diagnosis.stats;
    println!("\n== three-phase diagnosis ==");
    println!("  transaction pairs examined : {}", s.txn_pairs);
    println!("  surviving phase 1          : {}", s.pairs_after_phase1);
    println!("  coarse deadlock cycles     : {}", s.coarse_cycles);
    println!("  fine candidates (to SMT)   : {}", s.fine_candidates);
    println!(
        "  SMT: {} SAT / {} UNSAT / {} unknown",
        s.smt_sat, s.smt_unsat, s.smt_unknown
    );
    println!(
        "  coarse-only baseline emits   : {} cycles (STEPDAD/REDACT style)",
        analysis.coarse_cycles
    );

    println!("\n== Table II rows ==");
    for row in KnownDeadlock::TABLE2 {
        if row.app() != "broadleaf" {
            continue;
        }
        let n = analysis.groups.get(&row).copied().unwrap_or(0);
        println!(
            "  {:<8} {:<40} fix {:<3} — {}",
            row.ids(),
            row.description(),
            row.fix().map(|f| f.label()).unwrap_or_default(),
            if n > 0 {
                format!("FOUND ({n} cycles)")
            } else {
                "missing".into()
            }
        );
    }

    println!("\n== one full report ==");
    if let Some(r) = analysis.diagnosis.deadlocks.first() {
        println!("{r}");
    }
}

//! Write skew under snapshot isolation, end to end: two on-call
//! sign-off transactions each check that another doctor is still on
//! call, then remove themselves from the roster. Their writes are
//! disjoint — no lock or first-updater-wins conflict fires — but the
//! crossed read-write antidependencies leave the roster empty, a state
//! no serial order can produce. The static oracle flags the pair, the
//! explorer confirms it at SNAPSHOT, and the default serializable 2PL
//! kills it.
//!
//! ```sh
//! cargo run --release --example anomaly_write_skew
//! ```

use weseer::analyzer::{find_anomaly_candidates, CollectedTrace};
use weseer::concolic::{loc, shared, take_ctx, ExecMode, SymValue};
use weseer::db::{Database, IsolationLevel};
use weseer::orm::OrmSession;
use weseer::replay::{concretize_txn, explore_anomalies, AnomalyOutcome, Instance, ReplayConfig};
use weseer::sqlir::{parser::parse, Catalog, ColType, TableBuilder, Value};

fn catalog() -> Catalog {
    Catalog::new(vec![TableBuilder::new("Doctors")
        .col("ID", ColType::Int)
        .col("ONCALL", ColType::Int)
        .primary_key(&["ID"])
        .build()
        .unwrap()])
    .unwrap()
}

fn seeded_db() -> Database {
    let db = Database::new(catalog());
    db.seed(
        "Doctors",
        vec![
            vec![Value::Int(1), Value::Int(1)],
            vec![Value::Int(2), Value::Int(1)],
        ],
    );
    db
}

/// Check the on-call roster, then sign off doctor `my_id`: the read is a
/// plain snapshot SELECT over the whole roster, the write touches only
/// the doctor's own row.
fn sign_off(
    session: &mut OrmSession<weseer::db::Session>,
    my_id: SymValue,
    oncall: SymValue,
) -> Result<(), weseer::orm::OrmError> {
    let engine = session.engine().clone();
    session.begin();
    let roster = parse("SELECT * FROM Doctors d WHERE d.ONCALL = ?").unwrap();
    let rows = session.query(
        &roster,
        std::slice::from_ref(&oncall),
        loc!("sign_off::roster"),
    )?;
    if rows.is_empty() {
        session.rollback();
        return Err(weseer::orm::OrmError::AppAbort("empty roster".into()));
    }
    let me = session
        .find("Doctors", &my_id, loc!("sign_off::me"))?
        .ok_or_else(|| weseer::orm::OrmError::AppAbort("unknown doctor".into()))?;
    me.set(
        &engine,
        "ONCALL",
        SymValue::concrete(Value::Int(0)),
        loc!("sign_off::leave"),
    );
    session.commit(loc!("sign_off"))
}

/// Trace one concolic run of the sign-off API for the given doctor.
fn collect_trace(api: &str, doctor: i64) -> CollectedTrace {
    let db = seeded_db();
    let engine = shared(ExecMode::Concolic);
    engine.borrow_mut().start_concolic();
    let mut session = OrmSession::new(engine.clone(), db.session(), db.catalog().clone());
    let my_id = engine
        .borrow_mut()
        .make_symbolic("my_id", Value::Int(doctor));
    let oncall = engine.borrow_mut().make_symbolic("oncall", Value::Int(1));
    sign_off(&mut session, my_id, oncall).expect("sign off runs");
    let trace = session.driver_mut().take_trace(api);
    drop(session);
    CollectedTrace::new(trace, take_ctx(&engine))
}

fn main() {
    let traces = vec![
        collect_trace("SignOffAlpha", 1),
        collect_trace("SignOffBeta", 2),
    ];

    // Static oracle: both APIs snapshot-read the Doctors roster and both
    // write Doctors — a write-skew candidate across the pair.
    let candidates = find_anomaly_candidates(&traces);
    println!("== static anomaly oracle ==");
    for c in &candidates {
        println!(
            "  {} on {}: {} vs {} at [{}]",
            c.kind,
            c.table,
            c.a_api,
            c.b_api,
            c.levels.join(", ")
        );
    }
    let skew = candidates
        .iter()
        .find(|c| c.kind == "write-skew" && c.a_api != c.b_api)
        .expect("the crossed sign-off pair must be flagged");
    assert_eq!(skew.table, "Doctors");

    let empty = weseer::smt::Model::default();
    let (ta, tb) = (&traces[0], &traces[1]);
    let instances = vec![
        Instance {
            name: "A1".into(),
            stmts: concretize_txn(ta, skew.a_txn, &empty),
        },
        Instance {
            name: "A2".into(),
            stmts: concretize_txn(tb, skew.b_txn, &empty),
        },
    ];
    let apis = vec![skew.a_api.clone(), skew.b_api.clone()];

    println!("\n== snapshot isolation: both sign off ==");
    let base = seeded_db();
    let out = explore_anomalies(
        &base,
        &instances,
        &apis,
        IsolationLevel::Snapshot,
        &ReplayConfig::default(),
    );
    let witness = match out {
        AnomalyOutcome::Anomalous(w) => w,
        AnomalyOutcome::Clean { .. } => panic!("snapshot isolation must admit the skew"),
    };
    assert!(witness.anomalies.iter().any(|a| a.kind == "write-skew"));
    print!("{}", witness.render());
    println!("canonical witness JSON:\n{}", witness.to_json());

    println!("\n== serializable (default): 2PL forbids it ==");
    let out = explore_anomalies(
        &base,
        &instances,
        &apis,
        IsolationLevel::Serializable,
        &ReplayConfig::default(),
    );
    match out {
        AnomalyOutcome::Clean { explored, pruned } => {
            println!("clean: {explored} schedules explored, {pruned} pruned");
        }
        AnomalyOutcome::Anomalous(w) => panic!("serializable must be clean: {}", w.render()),
    }
}

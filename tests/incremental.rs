//! End-to-end incremental warm starts: a warm run against a filled store
//! must be byte-identical to the cold run that filled it — across thread
//! counts — while doing **zero** full DPLL(T) solves and exploring
//! **zero** replay schedules; dirtying one trace must invalidate exactly
//! the stored outcomes that involve it.

use std::path::PathBuf;
use weseer::apps::Broadleaf;
use weseer::core::{AppAnalysis, Weseer};
use weseer::obs::MetricsSnapshot;

fn store_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "weseer-incremental-test-{}-{name}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&p);
    p
}

/// Deterministic projection of an analysis: rendered reports, replay
/// verdicts (witnesses as canonical JSON), and funnel counters.
fn render(analysis: &AppAnalysis) -> String {
    let mut s = String::new();
    for r in &analysis.diagnosis.deadlocks {
        s.push_str(&format!("{r}\n"));
    }
    for v in &analysis.replay.as_ref().expect("replay enabled").verdicts {
        match v.witness() {
            Some(w) => s.push_str(&format!("{}\n", w.to_json())),
            None => s.push_str(&format!("{}\n", v.tag())),
        }
    }
    let st = &analysis.diagnosis.stats;
    s.push_str(&format!(
        "funnel {} {} {} {} {} {} {} {}\n",
        st.txn_pairs,
        st.pairs_after_phase1,
        st.coarse_cycles,
        st.prefix_kills,
        st.fine_candidates,
        st.smt_sat,
        st.smt_unsat,
        st.smt_unknown,
    ));
    s
}

fn run(path: &PathBuf, threads: usize, dirty: Option<&str>) -> (AppAnalysis, MetricsSnapshot) {
    let mut weseer = Weseer::new()
        .with_threads(threads)
        .with_replay()
        .with_store(path)
        .expect("open store");
    if let Some(api) = dirty {
        weseer = weseer.with_dirty(api);
    }
    let before = weseer::obs::snapshot();
    let analysis = weseer.analyze(&Broadleaf);
    (analysis, weseer::obs::snapshot().delta_since(&before))
}

#[test]
fn warm_runs_are_byte_identical_and_solve_nothing() {
    weseer::obs::set_enabled(true);
    let path = store_path("broadleaf");

    // Cold run on one thread fills the store.
    let (cold, _) = run(&path, 1, None);
    let cold_out = render(&cold);
    assert!(
        !cold.diagnosis.deadlocks.is_empty(),
        "cold run must diagnose deadlocks"
    );
    let file_after_cold = std::fs::read(&path).expect("store written");

    // Warm run on four threads: byte-identical output, every store
    // lookup a hit, no SMT full solve, no schedule exploration, and the
    // store file untouched.
    let (warm, wm) = run(&path, 4, None);
    assert_eq!(render(&warm), cold_out, "warm output must match cold");
    assert_eq!(wm.counter("smt.full_solve"), 0, "warm run must not solve");
    assert_eq!(
        wm.counter("replay.schedules_explored"),
        0,
        "warm run must not explore schedules"
    );
    assert_eq!(wm.counter("store.miss"), 0);
    assert_eq!(wm.counter("store.stale"), 0);
    assert!(wm.counter("store.hit") > 0);
    assert_eq!(
        std::fs::read(&path).expect("store present"),
        file_after_cold,
        "an unchanged warm run must leave the store file untouched"
    );

    // Dirty the Ship trace: same output (the traces did not actually
    // change), but exactly the fingerprint-keyed entries involving Ship
    // go stale and are recomputed.
    let (dirty, dm) = run(&path, 4, Some("Ship"));
    assert_eq!(render(&dirty), cold_out, "dirtied output must match cold");
    assert!(dm.counter("store.stale") > 0, "dirtying must invalidate");

    // Every fingerprint-keyed entry is either still warm or stale; none
    // disappear (per kind: dirty hits + dirty stales == warm hits).
    for kind in ["prefix", "pair2", "pair3", "wit"] {
        assert_eq!(
            dm.counter(&format!("store.hit.{kind}")) + dm.counter(&format!("store.stale.{kind}")),
            wm.counter(&format!("store.hit.{kind}")),
            "kind {kind}: hits+stales must cover the warm hit set"
        );
    }
    // Formula-keyed SMT verdicts are fingerprint-independent: a dirtied
    // trace with unchanged content re-derives the same canonical
    // formulas, so no smt entry ever goes stale.
    assert_eq!(dm.counter("store.stale.smt"), 0);

    // The stale witness entries are exactly the reports involving Ship.
    let involving_ship = cold
        .diagnosis
        .deadlocks
        .iter()
        .filter(|r| r.cycle.a_api == "Ship" || r.cycle.b_api == "Ship")
        .count() as u64;
    assert!(involving_ship > 0, "Broadleaf reports Ship deadlocks");
    assert_eq!(dm.counter("store.stale.wit"), involving_ship);

    // Pairs not touching Ship stayed warm.
    assert!(
        dm.counter("store.hit.pair2") > 0,
        "pairs not touching Ship must stay warm"
    );

    let _ = std::fs::remove_file(&path);
}

//! Observability-plane integration: the trace timeline must capture a
//! full pipeline run (spans, SMT solves, lock events, worker lanes) and
//! export valid Chrome trace-event JSON; the live endpoint must serve the
//! run's metrics, funnel, and wait-for state; and enabling the timeline
//! must not change one byte of the diagnosis or replay output.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use weseer::apps::Shopizer;
use weseer::core::{Weseer, FUNNEL_STAGES};
use weseer::store::json::Json;

/// The byte-comparison view of one analysis: rendered reports plus
/// replay verdicts (witnesses as canonical JSON).
fn render(analysis: &weseer::core::AppAnalysis) -> String {
    let mut s = String::new();
    for r in &analysis.diagnosis.deadlocks {
        s.push_str(&format!("{r}\n"));
    }
    if let Some(replay) = &analysis.replay {
        for v in &replay.verdicts {
            match v.witness() {
                Some(w) => s.push_str(&format!("{}\n", w.to_json())),
                None => s.push_str(&format!("{}\n", v.tag())),
            }
        }
    }
    s
}

fn get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to obs server");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response.split_once("\r\n\r\n").expect("header separator");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{path}: {head}");
    body.to_string()
}

#[test]
fn observability_plane_end_to_end() {
    // Force parallel workers so the timeline gets per-worker lanes.
    std::env::set_var("WESEER_THREADS", "2");
    weseer::obs::set_enabled(true);
    weseer::obs::timeline::set_enabled(true);
    weseer::obs::timeline::set_lane_name("main");

    let analysis = Weseer::new().with_replay().analyze(&Shopizer);
    weseer::obs::timeline::set_enabled(false);
    let timeline = weseer::obs::timeline::snapshot();

    // -- Pillar 1: the timeline covered the whole run -------------------
    assert!(!timeline.records.is_empty(), "timeline recorded nothing");
    let cats: std::collections::BTreeSet<&str> = timeline.records.iter().map(|r| r.cat).collect();
    for want in ["span", "smt", "db"] {
        assert!(cats.contains(want), "no '{want}' records; have {cats:?}");
    }
    assert!(
        timeline.records.iter().any(|r| r.name == "smt.solve"
            && r.args.iter().any(|(k, _)| k == "tier")
            && r.args.iter().any(|(k, _)| k == "verdict")),
        "SMT solves must carry tier and verdict"
    );
    assert!(
        timeline
            .lanes
            .iter()
            .any(|l| l.starts_with("analyzer.worker")),
        "no per-worker lane; lanes: {:?}",
        timeline.lanes
    );
    assert!(timeline.lanes.iter().any(|l| l == "main"));

    // The Chrome export is well-formed JSON with metadata + duration
    // events on the worker lanes.
    let chrome = weseer::obs::chrome::to_chrome_trace(&timeline);
    let parsed = Json::parse(&chrome).expect("chrome trace must parse");
    let events = parsed
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let ph = |e: &Json| e.get("ph").and_then(Json::as_str).unwrap_or("").to_string();
    assert!(
        events
            .iter()
            .any(|e| ph(e) == "M" && e.get("name").and_then(Json::as_str) == Some("thread_name")),
        "thread_name metadata missing"
    );
    assert!(events.iter().any(|e| ph(e) == "X"), "no complete events");
    // Events land on more than one lane (main + at least one worker).
    let tids: std::collections::BTreeSet<u64> = events
        .iter()
        .filter(|e| ph(e) == "X")
        .filter_map(|e| e.get("tid").and_then(Json::as_u64))
        .collect();
    assert!(tids.len() > 1, "all events on one lane: {tids:?}");

    // -- Pillar 2: the live endpoint serves the run's state -------------
    let server =
        weseer::obs::ObsServer::start("127.0.0.1:0", FUNNEL_STAGES).expect("bind obs server");
    let addr = server.local_addr();

    let metrics = get(addr, "/metrics");
    assert!(metrics.contains("weseer_analyzer_txn_pairs_total"));
    assert!(metrics.contains("weseer_smt_solve_us{quantile=\"0.99\"}"));

    let funnel = Json::parse(&get(addr, "/funnel")).expect("funnel JSON");
    let stages = funnel
        .get("stages")
        .and_then(Json::as_arr)
        .expect("stages array");
    assert_eq!(stages.len(), FUNNEL_STAGES.len());
    assert!(
        stages
            .iter()
            .any(|s| s.get("value").and_then(Json::as_u64).unwrap_or(0) > 0),
        "every funnel stage empty"
    );

    let waitfor = Json::parse(&get(addr, "/waitfor")).expect("waitfor JSON");
    assert!(waitfor.get("edges").and_then(Json::as_arr).is_some());
    assert!(get(addr, "/waitfor.dot").starts_with("digraph waitfor {"));
    assert!(get(addr, "/").contains("<html"));
    server.stop();

    // -- Pillar 3: recording is a pure observer -------------------------
    weseer::obs::set_enabled(false);
    let baseline = Weseer::new().with_replay().analyze(&Shopizer);
    assert_eq!(
        render(&analysis),
        render(&baseline),
        "timeline/metrics recording changed the diagnosis output"
    );
}

//! Concurrency soundness of the storage engine under deadlock recovery:
//! concurrent read-modify-write transfers either commit atomically or roll
//! back completely, so money is conserved no matter how many victims the
//! deadlock detector picks.

use std::sync::{Arc, Barrier};
use std::thread;
use weseer::db::{Database, DbError};
use weseer::sqlir::{parser::parse, Catalog, ColType, TableBuilder, Value};

fn bank(accounts: i64, balance: i64) -> Database {
    let catalog = Catalog::new(vec![TableBuilder::new("Account")
        .col("ID", ColType::Int)
        .col("BALANCE", ColType::Int)
        .primary_key(&["ID"])
        .build()
        .unwrap()])
    .unwrap();
    let db = Database::new(catalog);
    db.seed(
        "Account",
        (1..=accounts)
            .map(|i| vec![Value::Int(i), Value::Int(balance)])
            .collect(),
    );
    db
}

fn total(db: &Database) -> i64 {
    db.dump("Account")
        .iter()
        .map(|r| r[1].as_int().unwrap())
        .sum()
}

#[test]
fn concurrent_transfers_conserve_money() {
    const ACCOUNTS: i64 = 6;
    const THREADS: usize = 8;
    const TRANSFERS: usize = 40;
    let db = Arc::new(bank(ACCOUNTS, 1000));
    let initial = total(&db);
    let barrier = Arc::new(Barrier::new(THREADS));

    let mut handles = Vec::new();
    for t in 0..THREADS {
        let db = db.clone();
        let barrier = barrier.clone();
        handles.push(thread::spawn(move || {
            barrier.wait();
            let sel = parse("SELECT * FROM Account a WHERE a.ID = ?").unwrap();
            let upd = parse("UPDATE Account SET BALANCE = ? WHERE ID = ?").unwrap();
            let mut deadlocks = 0u32;
            for k in 0..TRANSFERS {
                // Deliberately inconsistent lock order across threads.
                let src = 1 + ((t + k) as i64 % ACCOUNTS);
                let dst = 1 + ((t * 3 + k * 5 + 1) as i64 % ACCOUNTS);
                if src == dst {
                    continue;
                }
                let mut s = db.session();
                s.begin();
                let run = (|| -> Result<(), DbError> {
                    let r1 = s.execute(&sel, &[Value::Int(src)])?;
                    let b1 = r1.rows[0]
                        .iter()
                        .find(|(n, _)| n == "a.BALANCE")
                        .unwrap()
                        .1
                        .as_int()
                        .unwrap();
                    let r2 = s.execute(&sel, &[Value::Int(dst)])?;
                    let b2 = r2.rows[0]
                        .iter()
                        .find(|(n, _)| n == "a.BALANCE")
                        .unwrap()
                        .1
                        .as_int()
                        .unwrap();
                    // Widen the read→write window so schedules overlap even
                    // on a single-core runner.
                    thread::sleep(std::time::Duration::from_micros(300));
                    s.execute(&upd, &[Value::Int(b1 - 7), Value::Int(src)])?;
                    s.execute(&upd, &[Value::Int(b2 + 7), Value::Int(dst)])?;
                    s.commit()
                })();
                match run {
                    Ok(()) => {}
                    Err(e) if e.aborts_txn() => deadlocks += 1, // already rolled back
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
            deadlocks
        }));
    }
    let total_deadlocks: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(
        total(&db),
        initial,
        "conservation violated after {total_deadlocks} deadlock aborts"
    );
    // The schedule is adversarial enough that deadlocks actually occurred,
    // otherwise this test proves nothing.
    assert!(
        total_deadlocks > 0 || db.stats().locks.waits > 0,
        "expected contention; stats: {:?}",
        db.stats()
    );
}

#[test]
fn timeout_recovery_also_conserves() {
    use std::time::Duration;
    let catalog = Catalog::new(vec![TableBuilder::new("Account")
        .col("ID", ColType::Int)
        .col("BALANCE", ColType::Int)
        .primary_key(&["ID"])
        .build()
        .unwrap()])
    .unwrap();
    let db = Database::with_timeout(catalog, Duration::from_millis(80));
    db.seed("Account", vec![vec![Value::Int(1), Value::Int(100)]]);

    // A writer parks on the row; a second writer must time out, roll back,
    // and leave the row untouched by its partial work.
    let sel = parse("SELECT * FROM Account a WHERE a.ID = ?").unwrap();
    let upd = parse("UPDATE Account SET BALANCE = ? WHERE ID = ?").unwrap();
    let mut s1 = db.session();
    s1.begin();
    s1.execute(&upd, &[Value::Int(50), Value::Int(1)]).unwrap();

    let db2 = db.clone();
    let upd2 = upd.clone();
    let h = thread::spawn(move || {
        let mut s2 = db2.session();
        s2.begin();
        s2.execute(&upd2, &[Value::Int(7), Value::Int(1)])
    });
    let r = h.join().unwrap();
    assert_eq!(r.unwrap_err(), DbError::LockWaitTimeout);
    s1.commit().unwrap();

    let mut s = db.session();
    s.begin();
    let r = s.execute(&sel, &[Value::Int(1)]).unwrap();
    assert!(r.rows[0].contains(&("a.BALANCE".to_string(), Value::Int(50))));
    s.commit().unwrap();
    assert_eq!(db.stats().timeout_aborts, 1);
}

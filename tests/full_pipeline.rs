//! Workspace-level integration: the user-facing facade runs the full
//! Fig. 2 pipeline and the reports can be *replayed* into real database
//! deadlocks (the paper's future-work reproduction framework).

use weseer::apps::{Broadleaf, KnownDeadlock, Shopizer};
use weseer::core::{replay, Weseer};

#[test]
fn facade_finds_every_table2_row() {
    let weseer = Weseer::new();
    let broadleaf = weseer.analyze(&Broadleaf);
    let shopizer = weseer.analyze(&Shopizer);
    let found: usize = broadleaf.deadlock_ids_found() + shopizer.deadlock_ids_found();
    assert_eq!(found, 18, "all 18 paper deadlocks must be covered");
    // Every found row belongs to the right app.
    for row in broadleaf.rows_found() {
        assert_eq!(row.app(), "broadleaf");
    }
    for row in shopizer.rows_found() {
        assert_eq!(row.app(), "shopizer");
    }
    // The three-phase funnel narrows monotonically.
    for a in [&broadleaf, &shopizer] {
        let s = &a.diagnosis.stats;
        assert!(s.pairs_after_phase1 <= s.txn_pairs);
        assert!(s.fine_candidates <= s.coarse_cycles);
        assert!(s.smt_sat + s.smt_unsat + s.smt_unknown == s.fine_candidates);
    }
}

#[test]
fn register_report_replays_into_a_real_deadlock() {
    // d1: two concurrent registrations — the report names Register twice;
    // racing the API reproduces the database deadlock.
    let weseer = Weseer::new();
    let analysis = weseer.analyze(&Broadleaf);
    let report = analysis
        .diagnosis
        .deadlocks
        .iter()
        .find(|r| r.cycle.a_api == "Register" && r.cycle.b_api == "Register")
        .expect("d1 report present");
    let outcome = replay(Broadleaf, report, 30);
    assert!(
        outcome.reproduced,
        "the Register-Register deadlock should replay within 30 attempts: {outcome:?}"
    );
}

#[test]
fn shopizer_checkout_report_replays() {
    // d16: two concurrent checkouts of the same customer read-modify-write
    // the same product rows.
    let weseer = Weseer::new();
    let analysis = weseer.analyze(&Shopizer);
    let report = analysis
        .diagnosis
        .deadlocks
        .iter()
        .find(|r| r.cycle.a_api == "Checkout" && r.cycle.b_api == "Checkout")
        .expect("checkout-checkout report present");
    let outcome = replay(Shopizer, report, 30);
    assert!(
        outcome.reproduced,
        "the Checkout-Checkout deadlock should replay within 30 attempts: {outcome:?}"
    );
}

#[test]
fn reports_carry_actionable_information() {
    // Fig. 2: reports include involved APIs, SQL, triggering code, and a
    // witness for inputs + database state.
    let weseer = Weseer::new();
    let analysis = weseer.analyze(&Shopizer);
    assert!(!analysis.diagnosis.deadlocks.is_empty());
    for r in &analysis.diagnosis.deadlocks {
        assert_eq!(r.statements.len(), 4, "hold/wait per instance");
        for s in &r.statements {
            assert!(!s.sql.is_empty());
            assert!(
                s.trigger.top().is_some(),
                "every statement maps to triggering code: {r}"
            );
        }
        assert!(!r.model.is_empty(), "witness assignment present: {r}");
    }
    // Grouping is total: every report classifies to something known.
    for r in &analysis.diagnosis.deadlocks {
        let k = weseer::apps::classify("shopizer", r);
        assert_ne!(k, KnownDeadlock::Unexpected, "{r}");
    }
}

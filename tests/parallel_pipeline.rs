//! End-to-end determinism of the parallel diagnosis: the full Shopizer
//! pipeline must produce byte-identical reports and funnel counters for
//! every thread count, and the SMT verdict cache must actually hit on the
//! real workload (the repeated-API traces re-discharge alpha-equivalent
//! formulas).

use weseer::analyzer::{diagnose, AnalyzerConfig, DiagnosisStats};
use weseer::apps::{ECommerceApp, Fixes, Shopizer};
use weseer::core::Weseer;
use weseer::smt::TierConfig;

/// The deterministic projection of `DiagnosisStats` (drops wall times).
fn funnel(s: &DiagnosisStats) -> [usize; 7] {
    [
        s.txn_pairs,
        s.pairs_after_phase1,
        s.coarse_cycles,
        s.fine_candidates,
        s.smt_sat,
        s.smt_unsat,
        s.smt_unknown,
    ]
}

#[test]
fn shopizer_diagnosis_is_identical_across_thread_counts() {
    let weseer = Weseer::new();
    let (traces, _db) = weseer.collect_traces(&Shopizer, &Fixes::none());
    let catalog = Shopizer.catalog();

    let run = |threads: usize| {
        let config = AnalyzerConfig {
            threads,
            ..AnalyzerConfig::default()
        };
        diagnose(&catalog, &traces, &config)
    };

    let sequential = run(1);
    assert!(
        !sequential.deadlocks.is_empty(),
        "Shopizer must produce reports"
    );
    let rendered: Vec<String> = sequential.deadlocks.iter().map(|r| r.to_string()).collect();

    for threads in [2, 4] {
        let parallel = run(threads);
        assert_eq!(
            funnel(&parallel.stats),
            funnel(&sequential.stats),
            "funnel differs at threads={threads}"
        );
        let parallel_rendered: Vec<String> =
            parallel.deadlocks.iter().map(|r| r.to_string()).collect();
        assert_eq!(
            parallel_rendered, rendered,
            "rendered reports differ at threads={threads}"
        );
    }
}

#[test]
fn verdict_cache_hits_on_real_workload() {
    // Run with the tiered fast path off so every candidate reaches the
    // verdict cache — with tiers on, tier 1 discharges the repeated
    // alpha-equivalent formulas before the cache ever sees them (that
    // path is covered by fastpath_discharges_cover_real_workload below).
    weseer::obs::set_enabled(true);
    let before = weseer::obs::snapshot();
    let weseer_tool = Weseer::new();
    let (traces, _db) = weseer_tool.collect_traces(&Shopizer, &Fixes::none());
    let mut config = AnalyzerConfig::default();
    config.solver.tiers = TierConfig::OFF;
    let diagnosis = diagnose(&Shopizer.catalog(), &traces, &config);
    let m = weseer::obs::snapshot().delta_since(&before);
    let hits = m.counters.get("smt.cache_hit").copied().unwrap_or(0);
    let misses = m.counters.get("smt.cache_miss").copied().unwrap_or(0);
    assert!(
        hits > 0,
        "expected verdict-cache hits on Shopizer (misses={misses})"
    );
    // Every analyzer solver dispatch goes through the cache.
    assert_eq!(
        hits + misses,
        diagnosis.stats.fine_candidates as u64,
        "cache lookups must cover exactly the fine candidates"
    );
}

#[test]
fn fastpath_discharges_cover_real_workload() {
    // With all tiers on (the default), the fast path must discharge a
    // real share of Shopizer's candidates, and discharges plus
    // fall-throughs must partition them. (The verdict cache can't serve
    // as the partition's other half anymore: the default config solves
    // incrementally, which bypasses the cache — `fallthrough` counts
    // every query the fast path handed to a full solver in any mode.)
    weseer::obs::set_enabled(true);
    let before = weseer::obs::snapshot();
    let weseer_tool = Weseer::new();
    let analysis = weseer_tool.analyze(&Shopizer);
    let m = weseer::obs::snapshot().delta_since(&before);
    let c = |name: &str| m.counters.get(name).copied().unwrap_or(0);
    let discharged =
        c("smt.fastpath.t0_simplified") + c("smt.fastpath.t1_unsat") + c("smt.fastpath.t1_sat");
    assert!(
        discharged > 0,
        "the tiered fast path should discharge some Shopizer candidates"
    );
    assert_eq!(
        discharged + c("smt.fastpath.fallthrough"),
        analysis.diagnosis.stats.fine_candidates as u64,
        "fastpath discharges plus fall-throughs must cover exactly the fine candidates"
    );
    // Incremental mode must keep the verdict cache out of the loop.
    assert_eq!(
        c("smt.cache_hit") + c("smt.cache_miss"),
        0,
        "the verdict cache must be bypassed while solving incrementally"
    );
}

//! Observability integration: a full diagnosis run must publish a
//! self-consistent funnel (the counters mirror `DiagnosisStats`), phase
//! wall times, SMT solver statistics, and lock-manager counters, and the
//! snapshot must export as well-formed JSON lines.

use weseer::apps::Broadleaf;
use weseer::core::Weseer;

#[test]
fn broadleaf_metrics_funnel_is_consistent() {
    weseer::obs::set_enabled(true);
    let analysis = Weseer::new().analyze(&Broadleaf);
    let m = &analysis.metrics;
    let c = |name: &str| {
        *m.counters
            .get(name)
            .unwrap_or_else(|| panic!("missing counter {name}; have {:?}", m.counters.keys()))
    };

    // The diagnosis funnel narrows monotonically and its tail partitions.
    let txn_pairs = c("analyzer.txn_pairs");
    let after_p1 = c("analyzer.pairs_after_phase1");
    let fine = c("analyzer.fine_candidates");
    let sat = c("analyzer.smt_sat");
    let unsat = c("analyzer.smt_unsat");
    let unknown = c("analyzer.smt_unknown");
    assert!(txn_pairs > 0, "no transaction pairs examined");
    assert!(after_p1 <= txn_pairs, "phase 1 cannot add pairs");
    assert!(
        fine <= c("analyzer.coarse_cycles"),
        "phase 2 cannot add candidates"
    );
    assert_eq!(
        sat + unsat + unknown,
        fine,
        "SMT verdicts must partition the candidates"
    );
    assert!(
        sat > 0,
        "Broadleaf has real deadlocks; some candidates must be sat"
    );

    // The counters are the published image of DiagnosisStats.
    let s = &analysis.diagnosis.stats;
    assert_eq!(txn_pairs, s.txn_pairs as u64);
    assert_eq!(after_p1, s.pairs_after_phase1 as u64);
    assert_eq!(fine, s.fine_candidates as u64);
    assert_eq!(sat, s.smt_sat as u64);
    assert_eq!(unsat, s.smt_unsat as u64);
    assert_eq!(unknown, s.smt_unknown as u64);
    assert_eq!(
        c("analyzer.deadlocks_reported"),
        analysis.diagnosis.deadlocks.len() as u64
    );

    // Per-phase wall times are published (phase 3 does real SMT work).
    assert_eq!(c("analyzer.phase1_us"), s.phase1_time.as_micros() as u64);
    assert_eq!(c("analyzer.phase2_us"), s.phase2_time.as_micros() as u64);
    assert_eq!(c("analyzer.phase3_us"), s.phase3_time.as_micros() as u64);
    assert!(
        c("analyzer.phase3_us") > 0,
        "phase 3 should take measurable time"
    );

    // SMT solver statistics flow out of the solver stack. Every fine
    // candidate dispatches the solver, where the tiered fast path either
    // discharges it outright (tier 0 constant-folds it, tier 1 decides it
    // abstractly) or falls through to a full solve — so the discharge
    // counters plus `fallthrough` partition the candidates. The default
    // config solves incrementally, which bypasses the verdict cache
    // entirely (a cache hit would fork the per-pair solver's query
    // sequence). A counter that stays zero is never published, hence the
    // defaulting lookup.
    let c0 = |name: &str| m.counters.get(name).copied().unwrap_or(0);
    assert!(
        c("smt.solve_calls") >= fine,
        "every fine candidate dispatches the solver"
    );
    let discharged =
        c0("smt.fastpath.t0_simplified") + c0("smt.fastpath.t1_unsat") + c0("smt.fastpath.t1_sat");
    assert_eq!(
        discharged + c0("smt.fastpath.fallthrough"),
        fine,
        "fastpath discharges plus fall-throughs must cover exactly the fine candidates"
    );
    assert_eq!(
        c0("smt.cache_hit") + c0("smt.cache_miss"),
        0,
        "the verdict cache must be bypassed while solving incrementally"
    );
    assert!(
        discharged > 0,
        "the tiered fast path should discharge some Broadleaf candidates"
    );
    assert!(c("smt.sat_propagations") > 0);
    let solve_us = m
        .histogram("smt.solve_us")
        .expect("smt.solve_us histogram missing");
    assert_eq!(solve_us.count, c("smt.solve_calls"));
    assert!(solve_us.p50() <= solve_us.p99());

    // Trace collection ran under the concolic engine.
    assert!(c("concolic.traces") > 0);
    assert!(c("concolic.statements") > 0);
    let api_us = m
        .histogram("concolic.trace_api_us")
        .expect("concolic.trace_api_us histogram missing");
    assert_eq!(api_us.count as usize, analysis.trace_summaries.len());

    // The lock manager counted the unit tests' acquisitions.
    assert!(c("db.lock.acquisitions") > 0);

    // The pipeline span was recorded.
    assert!(
        m.histogram("span.pipeline.analyze").is_some(),
        "pipeline span missing"
    );

    // The JSON-lines export is line-shaped and scoped.
    let json = m.to_json_lines(Some("broadleaf"));
    assert!(!json.is_empty());
    for line in json.lines() {
        assert!(
            line.starts_with("{\"type\":\"") && line.ends_with('}'),
            "malformed JSON line: {line}"
        );
        assert!(
            line.contains("\"scope\":\"broadleaf\""),
            "unscoped line: {line}"
        );
    }
    assert!(json.contains("\"name\":\"analyzer.txn_pairs\""));
    assert!(json.contains("\"name\":\"smt.solve_us\""));
}

/// The funnel definition covers the serving plane: the daemon's ingest
/// and verdict counters render as trailing stages (zero in batch runs),
/// and the stage list stays free of duplicates.
#[test]
fn funnel_stages_cover_the_serving_plane() {
    use weseer::core::FUNNEL_STAGES;
    let counters: Vec<&str> = FUNNEL_STAGES.iter().map(|&(_, c)| c).collect();
    assert!(counters.contains(&"serve.traces_ingested"));
    assert!(counters.contains(&"serve.verdicts_served"));
    let unique: std::collections::BTreeSet<&str> = counters.iter().copied().collect();
    assert_eq!(unique.len(), counters.len(), "duplicate funnel counters");

    // The serve stages sit after the batch pipeline's stages, so the
    // rendered funnel reads collection -> diagnosis -> replay -> serving.
    let serve_idx = counters
        .iter()
        .position(|c| *c == "serve.traces_ingested")
        .unwrap();
    assert!(
        counters[..serve_idx]
            .iter()
            .all(|c| !c.starts_with("serve.")),
        "serve stages must trail the batch stages"
    );
}

//! Acceptance test for the witness replay engine (the ISSUE's bar): on
//! Shopizer at least one SAT cycle must be replay-confirmed with a
//! non-empty witness whose final wait-for cycle matches the analyzer's
//! reported cycle, byte-identical across repeated invocations and across
//! analyzer thread counts.

use weseer::apps::Shopizer;
use weseer::core::Weseer;

fn run(threads: usize) -> (Vec<&'static str>, Vec<String>) {
    let analysis = Weseer::new()
        .with_threads(threads)
        .with_replay()
        .analyze(&Shopizer);
    let summary = analysis.replay.as_ref().expect("replay was requested");
    assert_eq!(
        summary.verdicts.len(),
        analysis.diagnosis.deadlocks.len(),
        "one verdict per report"
    );
    assert!(
        summary.confirmed() >= 1,
        "at least one shopizer SAT cycle must replay-confirm"
    );
    let mut tags = Vec::new();
    let mut jsons = Vec::new();
    for (report, verdict) in analysis.diagnosis.deadlocks.iter().zip(&summary.verdicts) {
        tags.push(verdict.tag());
        if let Some(w) = verdict.witness() {
            assert!(!w.steps.is_empty(), "witness must have steps");
            assert_eq!(w.steps.last().unwrap().outcome, "deadlock");
            // The witness's wait-for cycle involves exactly the two
            // instances of the analyzer's reported cycle, and the
            // instances map back to the report's APIs.
            assert!(
                w.cycle_covers_instances(),
                "cycle {:?} must involve both instances",
                w.cycle
            );
            let apis: Vec<&str> = w.instances.iter().map(|i| i.api.as_str()).collect();
            assert_eq!(
                apis,
                vec![report.cycle.a_api.as_str(), report.cycle.b_api.as_str()]
            );
            jsons.push(w.to_json());
        }
    }
    (tags, jsons)
}

#[test]
fn shopizer_witnesses_confirm_and_are_deterministic() {
    let (tags1, jsons1) = run(1);
    let (tags4, jsons4) = run(4);
    assert_eq!(tags1, tags4, "verdicts must not depend on thread count");
    assert_eq!(
        jsons1, jsons4,
        "witness bytes must not depend on thread count"
    );
    let (tags1b, jsons1b) = run(1);
    assert_eq!(tags1, tags1b, "verdicts must be stable across invocations");
    assert_eq!(
        jsons1, jsons1b,
        "witness bytes must be stable across invocations"
    );
}

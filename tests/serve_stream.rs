//! Serving-plane integration: an in-process `weseer-serve` daemon must
//! stream verdicts byte-identical to the batch pipeline, a second daemon
//! session against the same store file must warm-start from the first
//! (hits > 0 — the store is fleet-shared, not per-process), and the HTTP
//! surface must serve `/analyze/<app>` and `/shards` end to end.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use weseer::core::Weseer;
use weseer::serve::{app_by_name, verdict_line, Daemon, DaemonConfig, ServeEvent};
use weseer::store::json::Json;

/// The batch pipeline's verdicts in the daemon's wire format.
fn batch_lines(name: &str) -> String {
    let app = app_by_name(name).expect("known app");
    let analysis = Weseer::new().analyze(app);
    analysis
        .diagnosis
        .deadlocks
        .iter()
        .map(|r| verdict_line(name, r))
        .collect()
}

/// Stream one app's trace set through `daemon` as an ingest client would
/// and concatenate the verdict events.
fn stream(daemon: &Daemon, name: &str) -> String {
    let app = app_by_name(name).expect("known app");
    let (traces, _db) = Weseer::new().collect_traces(app, &weseer::apps::Fixes::none());
    let client = daemon.client(name);
    for t in traces {
        client.send(t);
    }
    let mut lines = String::new();
    for event in client.finish() {
        match event {
            ServeEvent::Verdict(line) => lines.push_str(&line),
            ServeEvent::Done(summary) => {
                assert!(summary.error.is_none(), "submission failed: {summary:?}");
                break;
            }
        }
    }
    lines
}

#[test]
fn streamed_verdicts_match_batch_and_warm_across_sessions() {
    weseer::obs::set_enabled(true);
    let store =
        std::env::temp_dir().join(format!("weseer-serve-stream-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&store);
    let batch = batch_lines("broadleaf");
    assert!(!batch.is_empty(), "broadleaf has deadlocks to stream");

    // Session 1 fills the store cold; sharded streaming must already be
    // byte-identical to the batch reduce.
    let config = DaemonConfig {
        shards: 2,
        store_path: Some(store.clone()),
        ..DaemonConfig::default()
    };
    let daemon = Daemon::start(config.clone()).expect("start daemon");
    assert_eq!(stream(&daemon, "broadleaf"), batch, "cold stream diverged");
    daemon.shutdown();

    // Session 2 is a fresh process image as far as the store is
    // concerned: it must reload the first session's verdicts and hit them.
    let before = weseer::obs::snapshot();
    let daemon = Daemon::start(config).expect("restart daemon");
    assert_eq!(stream(&daemon, "broadleaf"), batch, "warm stream diverged");
    daemon.shutdown();
    let delta = weseer::obs::snapshot().delta_since(&before);
    assert!(
        delta.counter("store.hit") > 0,
        "second session hit nothing from the first: {:?}",
        delta.counters
    );
    let _ = std::fs::remove_file(&store);
}

fn get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to daemon");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response.split_once("\r\n\r\n").expect("header separator");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{path}: {head}");
    body.to_string()
}

#[test]
fn http_surface_serves_analyze_and_shards() {
    let (daemon, server) =
        weseer::serve::serve("127.0.0.1:0", DaemonConfig::default()).expect("bind daemon");
    let addr = server.local_addr();

    let body = get(addr, "/analyze/shopizer");
    assert_eq!(body, batch_lines("shopizer"), "HTTP stream diverged");

    let shards = Json::parse(&get(addr, "/shards")).expect("shards JSON");
    assert_eq!(
        shards.get("shards").and_then(Json::as_u64),
        Some(daemon.config().shards as u64)
    );
    assert!(
        shards
            .get("verdicts_served")
            .and_then(Json::as_u64)
            .unwrap_or(0)
            > 0,
        "no verdicts counted: {shards:?}"
    );
    let per_shard = shards
        .get("per_shard")
        .and_then(Json::as_arr)
        .expect("per_shard array");
    assert_eq!(per_shard.len(), daemon.config().shards);
    assert!(
        per_shard
            .iter()
            .map(|s| s.get("tasks").and_then(Json::as_u64).unwrap_or(0))
            .sum::<u64>()
            > 0,
        "no shard did any work: {shards:?}"
    );

    // The funnel's serving stages carry the daemon's counters.
    let funnel = Json::parse(&get(addr, "/funnel")).expect("funnel JSON");
    let stages = funnel
        .get("stages")
        .and_then(Json::as_arr)
        .expect("stages array");
    assert!(
        stages.iter().any(|s| {
            s.get("label").and_then(Json::as_str) == Some("verdicts served (serve)")
                && s.get("value").and_then(Json::as_u64).unwrap_or(0) > 0
        }),
        "serve funnel stage missing or empty"
    );

    server.stop();
}

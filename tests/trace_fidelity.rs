//! Cross-crate trace fidelity: what the concolic driver records must
//! agree with what the database executed and with the ORM semantics the
//! paper builds on.

use weseer::apps::app::collect_trace;
use weseer::apps::{AppLocks, Broadleaf, ECommerceApp, Fixes, Shopizer};
use weseer::concolic::{ExecMode, LibraryMode};
use weseer::db::Database;

fn traces_of(app: &dyn ECommerceApp) -> (Vec<weseer::concolic::Trace>, Database) {
    let db = Database::new(app.catalog());
    app.seed(&db);
    let fixes = Fixes::none();
    let locks = AppLocks::new();
    let mut out = Vec::new();
    for test in app.unit_tests() {
        let (trace, _ctx, r) = collect_trace(
            app,
            test,
            &db,
            &fixes,
            &locks,
            ExecMode::Concolic,
            LibraryMode::Modeled,
        );
        r.unwrap();
        out.push(trace);
    }
    (out, db)
}

#[test]
fn recorded_statements_match_database_counter() {
    let app = Broadleaf;
    let (traces, db) = traces_of(&app);
    let recorded: usize = traces.iter().map(|t| t.statements.len()).sum();
    assert_eq!(
        recorded as u64,
        db.stats().statements,
        "every executed statement must be recorded exactly once"
    );
}

#[test]
fn statement_sequence_numbers_interleave_with_path_conditions() {
    let app = Broadleaf;
    let (traces, _db) = traces_of(&app);
    for t in &traces {
        // Statement seqs strictly increase within a trace.
        let seqs: Vec<u64> = t.statements.iter().map(|s| s.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted, "{}: statement seq order", t.api);
        // Path conditions strictly increase too and share the counter.
        let pc_seqs: Vec<u64> = t.path_conds.iter().map(|p| p.seq).collect();
        let mut pc_sorted = pc_seqs.clone();
        pc_sorted.sort_unstable();
        assert_eq!(pc_seqs, pc_sorted, "{}: path condition seq order", t.api);
        for (a, b) in seqs.iter().zip(pc_seqs.iter()) {
            assert_ne!(a, b, "{}: seq namespace must be shared, not reused", t.api);
        }
    }
}

#[test]
fn every_statement_has_trigger_and_txn() {
    for app_traces in [traces_of(&Broadleaf).0, traces_of(&Shopizer).0] {
        for t in &app_traces {
            for s in &t.statements {
                assert!(
                    s.trigger.top().is_some(),
                    "{} {}: missing trigger",
                    t.api,
                    s.label()
                );
                assert!(s.txn < t.txns.len());
                assert!(t.txns[s.txn].stmt_indexes.contains(&(s.index - 1)));
            }
            // Transactions partition the statements.
            let covered: usize = t.txns.iter().map(|x| x.stmt_indexes.len()).sum();
            assert_eq!(covered, t.statements.len(), "{}", t.api);
        }
    }
}

#[test]
fn write_behind_triggers_differ_from_send_sites() {
    // At least one buffered write in the suite must have trigger ≠ sent_at
    // (the Sec. VI phenomenon the tool exists to handle).
    let (traces, _db) = traces_of(&Broadleaf);
    let mut found = false;
    for t in &traces {
        for s in &t.statements {
            if s.stmt.kind() != "SELECT" && s.trigger != s.sent_at {
                found = true;
            }
        }
    }
    assert!(
        found,
        "expected write-behind statements with distinct trigger sites"
    );
}

#[test]
fn symbolic_inputs_flow_into_statement_parameters() {
    let (traces, _db) = traces_of(&Shopizer);
    // The Add tests' product_id input must reach a statement parameter
    // symbolically.
    let add = traces.iter().find(|t| t.api == "Add2").unwrap();
    assert!(
        add.statements
            .iter()
            .any(|s| s.params.iter().any(|p| p.is_symbolic())),
        "symbolic inputs must propagate into SQL parameters"
    );
    // Fetched state becomes symbolic too.
    assert!(add.statements.iter().any(|s| s
        .rows
        .iter()
        .any(|r| r.cols.iter().any(|(_, v)| v.is_symbolic()))));
}

#[test]
fn unique_ids_are_tagged_per_generator() {
    let (traces, _db) = traces_of(&Broadleaf);
    let register = traces.iter().find(|t| t.api == "Register").unwrap();
    assert_eq!(register.unique_ids.len(), 1);
    assert_eq!(register.unique_ids[0].0, "Customer");
    let add1 = traces.iter().find(|t| t.api == "Add1").unwrap();
    let gens: Vec<&str> = add1.unique_ids.iter().map(|(g, _)| g.as_str()).collect();
    assert!(gens.contains(&"Cart"));
    assert!(gens.contains(&"CartItem"));
}
